"""Chaos subsystem: seeded failures, revocations, and checkpointed rescue.

Covers the PR's contract:

* spec + wiring — :class:`ChaosSpec` validation and JSON round-trips
  (scenario files, per-``NodeSpec`` rate overrides, the ``--chaos`` runner
  flag), chaos rejected on single-machine scenarios;
* seed-stream isolation — a zero-rate chaos run is bit-identical to a
  chaos-off run and still reproduces the pre-chaos golden metrics within
  1e-9; identical configs fail identically;
* crash semantics — queued and running work forfeits progress, re-enters
  through the ordinary ARRIVAL path, and completes exactly once; budgets,
  redispatch delay, billing stops at the failure instant;
* revocations — warning then teardown, drain-rescue under deadline
  pressure, idle nodes escaping, checkpointed migration preserving partial
  progress where plain stealing forfeits it;
* fleet-collapse edges — whole fleet failed or draining buffers arrivals
  into the backlog-replay path instead of raising, the load signal reads
  infinite, an autoscaler regrows the fleet and replaces failed capacity;
* races — node failure vs a task on the wire, a steal in transit, and an
  armed retry timer, each completing (or rejecting) exactly once.
"""

from __future__ import annotations

import json

import pytest

from golden_scenarios import assert_close, load_golden
from repro.chaos import ChaosInjector, ChaosSpec, build_injector
from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    NodeSpec,
    NodeState,
    simulate_cluster,
)
from repro.cluster.autoscaler import (
    AutoscalerConfig,
    ReactiveAutoscaler,
    fleet_load_signal,
)
from repro.cluster.config import NetworkSpec
from repro.cluster.migration import WorkStealingPolicy
from repro.experiments.common import run_experiment, two_minute_workload
from repro.middleware import TimeoutRetryMiddleware
from repro.scenario import Scenario, Workload
from repro.simulation.events import EventPriority
from repro.simulation.task import Task, make_tasks


def chaos_config(**overrides) -> ClusterConfig:
    defaults = dict(
        num_nodes=2, cores_per_node=1, scheduler="fifo", dispatcher="round_robin"
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def at(cluster, time, callback, tag="test-chaos"):
    """Schedule a control-priority callback inside the run."""
    cluster.events.push(time, callback, priority=EventPriority.CONTROL, tag=tag)


# ---------------------------------------------------------------------- spec


class TestChaosSpec:
    def test_defaults_serialise_empty(self):
        assert ChaosSpec().to_dict() == {}
        assert ChaosSpec.from_dict({}) == ChaosSpec()

    def test_full_round_trip(self):
        spec = ChaosSpec(
            crash_rate=0.1,
            revocation_rate=0.2,
            warning=5.0,
            redispatch_delay=0.3,
            max_failures=2,
        )
        data = spec.to_dict()
        assert ChaosSpec.from_dict(json.loads(json.dumps(data))) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": -0.1},
            {"revocation_rate": -1.0},
            {"warning": -2.0},
            {"redispatch_delay": -0.5},
            {"max_failures": 0},
        ],
    )
    def test_validates_arguments(self, kwargs):
        with pytest.raises(ValueError):
            ChaosSpec(**kwargs)

    def test_build_injector_coercion(self):
        cluster = ClusterSimulator(config=chaos_config())
        assert build_injector(None, cluster) is None
        injector = build_injector({"crash_rate": 0.5}, cluster)
        assert isinstance(injector, ChaosInjector)
        assert injector.spec.crash_rate == 0.5
        with pytest.raises(TypeError):
            build_injector(42, cluster)

    def test_config_coerces_dict_and_rejects_garbage(self):
        config = chaos_config(chaos={"crash_rate": 0.25})
        assert isinstance(config.chaos, ChaosSpec)
        assert config.chaos.crash_rate == 0.25
        with pytest.raises(TypeError):
            chaos_config(chaos=object())

    def test_config_with_chaos_helper(self):
        config = chaos_config().with_chaos(revocation_rate=0.1, warning=3.0)
        assert config.chaos == ChaosSpec(revocation_rate=0.1, warning=3.0)

    def test_node_rates_overrides(self):
        config = ClusterConfig(
            node_specs=(
                NodeSpec(cores=1, label="spot"),
                NodeSpec(cores=1, label="reliable", crash_rate=0.0),
                NodeSpec(cores=1, label="fragile", crash_rate=9.0,
                         revocation_rate=1.5),
            ),
            scheduler="fifo",
            dispatcher="round_robin",
            chaos=ChaosSpec(crash_rate=0.5, revocation_rate=0.25),
        )
        cluster = ClusterSimulator(config=config)
        spot, reliable, fragile = cluster.nodes
        assert cluster._chaos.node_rates(spot) == (0.5, 0.25)
        assert cluster._chaos.node_rates(reliable) == (0.0, 0.25)
        assert cluster._chaos.node_rates(fragile) == (9.0, 1.5)

    def test_node_spec_rates_validated(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=1, crash_rate=-0.1)
        with pytest.raises(ValueError):
            NodeSpec(cores=1, revocation_rate=-0.1)


# ------------------------------------------------------------------ scenario


class TestScenarioWiring:
    def cluster_scenario(self, **kwargs) -> Scenario:
        defaults = dict(
            workload=Workload("two_minute", scale=0.02),
            num_nodes=2,
            cores_per_node=2,
            scheduler="fifo",
            dispatcher="round_robin",
        )
        defaults.update(kwargs)
        return Scenario(**defaults)

    def test_single_machine_scenario_rejects_chaos(self):
        with pytest.raises(ValueError):
            Scenario(
                workload=Workload("two_minute", scale=0.02),
                scheduler="fifo",
                chaos=ChaosSpec(crash_rate=0.1),
            )

    def test_scenario_json_round_trip(self):
        scenario = self.cluster_scenario(
            chaos=ChaosSpec(crash_rate=0.1, warning=4.0, max_failures=2),
        )
        clone = Scenario.from_json(scenario.to_json())
        assert clone.chaos == scenario.chaos
        assert clone == scenario

    def test_scenario_coerces_chaos_dict(self):
        scenario = self.cluster_scenario(chaos={"revocation_rate": 0.2})
        assert scenario.chaos == ChaosSpec(revocation_rate=0.2)

    def test_with_chaos_helper(self):
        scenario = self.cluster_scenario().with_chaos(crash_rate=0.3)
        assert scenario.chaos == ChaosSpec(crash_rate=0.3)

    def test_node_spec_rates_round_trip(self):
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.02),
            node_specs=(
                NodeSpec(cores=2, label="spot", revocation_rate=0.5),
                NodeSpec(cores=2, label="reliable", revocation_rate=0.0),
            ),
            scheduler="fifo",
            dispatcher="round_robin",
            chaos=ChaosSpec(revocation_rate=0.25),
        )
        clone = Scenario.from_json(scenario.to_json())
        assert clone.node_specs[0].revocation_rate == 0.5
        assert clone.node_specs[1].revocation_rate == 0.0
        assert clone == scenario

    def test_build_cluster_config_carries_chaos(self):
        scenario = self.cluster_scenario(chaos=ChaosSpec(crash_rate=0.1))
        config = scenario.build_cluster_config()
        assert config.chaos == ChaosSpec(crash_rate=0.1)

    def test_runner_chaos_flag(self, capsys, tmp_path):
        from repro.experiments.runner import run_cli

        path = tmp_path / "chaotic.json"
        path.write_text(self.cluster_scenario().to_json())
        code = run_cli(
            ["--scenario", str(path), "--chaos", "crash_rate=2.0,max_failures=1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos" in out
        assert "nodes failed" in out

    def test_runner_chaos_flag_requires_scenario(self, capsys):
        from repro.experiments.runner import run_cli

        assert run_cli(["--chaos", "crash_rate=1.0"]) == 2

    def test_runner_chaos_flag_rejects_bad_fields(self, capsys, tmp_path):
        from repro.experiments.runner import run_cli

        path = tmp_path / "chaotic.json"
        path.write_text(self.cluster_scenario().to_json())
        assert run_cli(["--scenario", str(path), "--chaos", "bogus=1"]) == 2
        assert run_cli(["--scenario", str(path), "--chaos", "crash_rate"]) == 2


# ------------------------------------------------------------ seed isolation


class TestSeedIsolation:
    def test_zero_rate_chaos_is_bit_identical_to_off(self):
        """Satellite contract: enabling chaos with zero rates draws nothing
        from the chaos stream and reproduces the chaos-off run exactly."""
        specs = [(i * 0.1, 0.4 + (i % 3) * 0.3) for i in range(30)]
        config = chaos_config(num_nodes=3, cores_per_node=2, migration="work_stealing")
        off = simulate_cluster(make_tasks(specs), config=config)
        on = simulate_cluster(
            make_tasks(specs), config=config, chaos=ChaosSpec()
        )
        key = lambda r: sorted(
            (t.task_id, t.first_run_time, t.completion_time) for t in r.tasks
        )
        assert key(on) == key(off)  # exact equality, not approx
        assert on.events_processed == off.events_processed
        assert on.tasks_migrated == off.tasks_migrated
        assert on.nodes_failed == 0 and on.tasks_lost == 0

    def test_zero_rate_chaos_matches_pre_chaos_golden(self):
        """The golden 1e-9 pin holds with a zero-rate injector attached."""
        from repro.simulation.metrics import TaskMetricsSummary

        config = ClusterConfig(
            node_specs=(
                NodeSpec(cores=24, count=2, label="big"),
                NodeSpec(cores=8, count=4, label="little"),
            ),
            scheduler="fifo",
            dispatcher="jsq",
            migration="work_stealing",
            chaos=ChaosSpec(),
        )
        result = simulate_cluster(two_minute_workload(0.1), config=config)
        observed = {
            key: float(value)
            for key, value in TaskMetricsSummary.from_tasks(result.tasks)
            .as_dict()
            .items()
        }
        observed["tasks_migrated"] = float(result.tasks_migrated)
        observed["simulated_time"] = float(result.simulated_time)
        for node_id, stats in sorted(result.node_stats.items()):
            observed[f"node{node_id}.assigned"] = float(stats["assigned"])
            observed[f"node{node_id}.completed"] = float(stats["completed"])
            observed[f"node{node_id}.stolen_in"] = float(stats["stolen_in"])
            observed[f"node{node_id}.stolen_away"] = float(stats["stolen_away"])
        golden = load_golden()["hetero_cluster_stealing"]
        assert_close("hetero_cluster_stealing (zero-rate chaos)", golden, observed)

    def test_same_config_fails_identically(self):
        specs = [(i * 0.05, 1.5) for i in range(40)]
        config = chaos_config(
            num_nodes=3, chaos=ChaosSpec(crash_rate=0.2, max_failures=1)
        )
        first = simulate_cluster(make_tasks(specs), config=config)
        second = simulate_cluster(make_tasks(specs), config=config)
        assert first.nodes_failed == second.nodes_failed == 1
        assert first.tasks_lost == second.tasks_lost
        assert sorted(t.completion_time for t in first.finished_tasks) == sorted(
            t.completion_time for t in second.finished_tasks
        )

    def test_chaos_stream_derives_from_config_seed(self):
        spec = ChaosSpec(crash_rate=0.2)
        draws = {}
        for seed in (0, 1):
            cluster = ClusterSimulator(config=chaos_config(seed=seed))
            injector = ChaosInjector(spec, cluster)
            draws[seed] = [injector.rng.expovariate(1.0) for _ in range(3)]
        assert draws[0] != draws[1]


# --------------------------------------------------------------------- crash


class TestCrashFailures:
    def test_crash_loses_queued_and_running_work_exactly_once(self):
        tasks = [
            Task(task_id=0, arrival_time=0.0, service_time=5.0),  # runs on node 0
            Task(task_id=1, arrival_time=0.0, service_time=5.0),  # runs on node 1
            Task(task_id=2, arrival_time=0.0, service_time=1.0),  # queues on node 0
        ]
        cluster = ClusterSimulator(config=chaos_config(), chaos=ChaosSpec())
        cluster.submit(tasks)
        at(cluster, 1.0, lambda: cluster._fail_node(cluster.nodes[0], "crash"))
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert result.nodes_failed == 1
        assert result.tasks_lost == 2
        # Task 0 forfeited exactly its 1.0s of progress; task 2 never started.
        assert result.wasted_service == pytest.approx(1.0)
        assert {t.task_id for t in result.lost_tasks()} == {0, 2}
        for task in result.lost_tasks():
            assert task.metadata["node_failures"] == 1
        # Exactly-once completion across the fleet.
        completed = sum(s["completed"] for s in result.node_stats.values())
        assert completed == 3
        assert result.node_stats[0]["failed"] == 1.0
        assert result.node_stats[0]["lost"] == 2.0
        # Billing stops at the failure instant.
        assert result.node_stats[0]["uptime"] == pytest.approx(1.0)
        assert cluster.nodes[0].state is NodeState.FAILED

    def test_seeded_crashes_fire_and_everything_still_completes(self):
        specs = [(i * 0.05, 1.2) for i in range(60)]
        result = simulate_cluster(
            make_tasks(specs),
            config=chaos_config(
                num_nodes=3,
                cores_per_node=2,
                chaos=ChaosSpec(crash_rate=0.3, max_failures=2),
            ),
        )
        assert result.nodes_failed >= 1
        assert result.completion_ratio == 1.0
        assert result.unserved_tasks() == 0
        completed = sum(s["completed"] for s in result.node_stats.values())
        assert completed == len(specs)

    def test_max_failures_budget_is_respected(self):
        specs = [(i * 0.05, 2.0) for i in range(60)]
        result = simulate_cluster(
            make_tasks(specs),
            config=chaos_config(
                num_nodes=4,
                chaos=ChaosSpec(crash_rate=5.0, max_failures=2),
            ),
        )
        assert result.nodes_failed == 2
        assert result.completion_ratio == 1.0

    def test_redispatch_delay_defers_reentry(self):
        task = Task(task_id=0, arrival_time=0.0, service_time=2.0)
        cluster = ClusterSimulator(
            config=chaos_config(), chaos=ChaosSpec(redispatch_delay=0.5)
        )
        cluster.submit([task])
        at(cluster, 1.0, lambda: cluster._fail_node(cluster.nodes[0], "crash"))
        result = cluster.run()
        # Lost at t=1.0, re-admitted at 1.5, restarts from scratch on node 1.
        assert result.tasks[0].completion_time == pytest.approx(3.5)
        assert result.wasted_service == pytest.approx(1.0)

    def test_whole_fleet_crashed_without_autoscaler_ends_honestly(self):
        """No recovery path: the run terminates with an incomplete result
        (parked backlog) instead of raising or spinning forever."""
        specs = [(0.0, 2.0), (0.1, 2.0), (0.2, 2.0)]
        result = simulate_cluster(
            make_tasks(specs),
            config=chaos_config(num_nodes=2, chaos=ChaosSpec(crash_rate=10.0)),
        )
        assert result.nodes_failed == 2
        assert result.completion_ratio < 1.0
        assert result.unserved_tasks() > 0


# --------------------------------------------------------------- revocations


class TestRevocations:
    def test_revocation_warns_drains_then_kills(self):
        task = Task(task_id=0, arrival_time=0.0, service_time=10.0)
        cluster = ClusterSimulator(
            config=chaos_config(), chaos=ChaosSpec(warning=1.0)
        )
        cluster.submit([task])
        at(cluster, 0.5, lambda: cluster._chaos._fire_revocation(cluster.nodes[0]))
        result = cluster.run()
        # Warned at 0.5, killed at 1.5 with 1.5s of progress forfeited; the
        # task restarts on node 1 and finishes at 11.5.
        assert cluster._chaos.revocations == 1
        assert result.nodes_failed == 1
        assert result.wasted_service == pytest.approx(1.5)
        assert result.tasks[0].completion_time == pytest.approx(11.5)
        assert cluster.nodes[0].state is NodeState.FAILED

    def test_idle_node_revocation_escapes(self):
        tasks = [Task(task_id=0, arrival_time=0.0, service_time=3.0)]
        cluster = ClusterSimulator(
            config=chaos_config(), chaos=ChaosSpec(warning=1.0)
        )
        cluster.submit(tasks)  # round robin puts the task on node 0
        at(cluster, 0.5, lambda: cluster._chaos._fire_revocation(cluster.nodes[1]))
        result = cluster.run()
        # Node 1 was idle: the drain retires it instantly and the kill finds
        # nothing to tear down.
        assert cluster._chaos.revocations == 1
        assert cluster._chaos.escapes == 1
        assert result.nodes_failed == 0
        assert cluster.nodes[1].state is NodeState.RETIRED
        assert result.completion_ratio == 1.0

    def test_revocation_of_already_draining_node_just_sets_the_deadline(self):
        tasks = [
            Task(task_id=0, arrival_time=0.0, service_time=5.0),
            Task(task_id=1, arrival_time=0.0, service_time=5.0),
        ]
        cluster = ClusterSimulator(
            config=chaos_config(), chaos=ChaosSpec(warning=1.0)
        )
        cluster.submit(tasks)
        at(cluster, 0.2, lambda: cluster.drain_node(cluster.nodes[0]))
        at(cluster, 0.5, lambda: cluster._chaos._fire_revocation(cluster.nodes[0]))
        result = cluster.run()
        # Already draining when the warning landed: no double drain, the
        # kill still fires at 1.5 and forfeits the running task's progress.
        assert cluster._chaos.revocations == 1
        assert result.nodes_failed == 1
        assert result.wasted_service == pytest.approx(1.5)
        assert result.completion_ratio == 1.0

    def test_drain_rescue_saves_queued_work_before_the_deadline(self):
        tasks = [
            Task(task_id=0, arrival_time=0.0, service_time=0.5),  # runs on node 0
            Task(task_id=1, arrival_time=0.0, service_time=0.1),  # runs on node 1
            Task(task_id=2, arrival_time=0.0, service_time=3.0),  # queues on node 0
            Task(task_id=3, arrival_time=0.0, service_time=3.0),  # queues on node 1
        ]
        # Both queued tasks land on node 0's queue? No: round robin
        # alternates, so 2 queues on node 0 and 3 on node 1.
        cluster = ClusterSimulator(
            config=chaos_config(
                migration="work_stealing", migration_kwargs={"interval": 10.0}
            ),
            chaos=ChaosSpec(warning=1.0),
        )
        cluster.submit(tasks)
        at(cluster, 0.2, lambda: cluster._chaos._fire_revocation(cluster.nodes[0]))
        result = cluster.run()
        # The drain triggers an immediate rescue pass: task 2 moves to node 1
        # before ever running; task 0 finishes at 0.5 and node 0 retires —
        # the kill at 1.2 finds it gone (escape), nothing is wasted.
        assert cluster._chaos.escapes == 1
        assert result.nodes_failed == 0
        assert result.tasks_migrated == 1
        assert result.wasted_service == 0.0
        assert result.completion_ratio == 1.0


# ---------------------------------------------------------------- checkpoint


class TestCheckpointedMigration:
    def _revoked_long_task(self, checkpoint: bool):
        task = Task(task_id=0, arrival_time=0.0, service_time=10.0)
        cluster = ClusterSimulator(
            config=chaos_config(
                migration="work_stealing",
                migration_kwargs={"interval": 10.0, "checkpoint": checkpoint},
            ),
            chaos=ChaosSpec(warning=2.0),
        )
        cluster.submit([task])
        at(cluster, 1.0, lambda: cluster._chaos._fire_revocation(cluster.nodes[0]))
        return cluster, cluster.run()

    def test_checkpoint_preserves_progress_where_forfeit_restarts(self):
        cluster_ckpt, with_ckpt = self._revoked_long_task(checkpoint=True)
        cluster_forf, without = self._revoked_long_task(checkpoint=False)

        # Checkpointed: the drain-triggered pass ships the running task with
        # its 1.0s of progress; it pays the checkpoint transfer + restore
        # overhead and finishes just after t=10.
        assert with_ckpt.tasks_checkpointed == 1
        assert with_ckpt.wasted_service == 0.0
        assert with_ckpt.tasks[0].metadata["checkpoints"] == 1
        ct_ckpt = with_ckpt.tasks[0].completion_time
        assert 10.0 < ct_ckpt < 10.1
        # The emptied node retires before the kill: a full escape.
        assert cluster_ckpt._chaos.escapes == 1
        assert with_ckpt.nodes_failed == 0

        # Forfeit: the task is still running at the kill (t=3.0), loses all
        # 3.0s of progress and restarts from scratch on the survivor.
        assert without.tasks_checkpointed == 0
        assert without.wasted_service == pytest.approx(3.0)
        assert without.tasks[0].completion_time == pytest.approx(13.0)
        assert without.nodes_failed == 1

        assert ct_ckpt < without.tasks[0].completion_time

    def test_restore_overhead_is_charged_once_at_snapshot_cut(self):
        policy = WorkStealingPolicy(checkpoint=True)
        _, result = self._revoked_long_task(checkpoint=True)
        ct = result.tasks[0].completion_time
        # 1.0s ran locally + transfer (delay + checkpoint_delay) + 9.0s left
        # + restore overhead.
        expected = (
            1.0
            + policy.delay
            + policy.checkpoint_delay
            + 9.0
            + policy.restore_overhead
        )
        assert ct == pytest.approx(expected)

    def test_transfer_delay_model(self):
        policy = WorkStealingPolicy(
            delay=0.01, checkpoint=True, checkpoint_delay=0.04
        )
        assert policy.transfer_delay(running=False) == pytest.approx(0.01)
        assert policy.transfer_delay(running=True) == pytest.approx(0.05)

    def test_checkpoint_knobs_validated(self):
        with pytest.raises(ValueError):
            WorkStealingPolicy(checkpoint_delay=-0.1)
        with pytest.raises(ValueError):
            WorkStealingPolicy(restore_overhead=-0.1)


# ------------------------------------------------------------ fleet collapse


class TestFleetCollapse:
    def test_load_signal_infinite_when_whole_fleet_failed(self):
        cluster = ClusterSimulator(config=chaos_config(), chaos=ChaosSpec())
        for node in list(cluster.nodes):
            cluster._fail_node(node, "crash")
        cluster.waiting_tasks.append(object())
        assert fleet_load_signal(cluster) == float("inf")
        cluster.waiting_tasks.clear()
        assert fleet_load_signal(cluster) == 0.0

    def test_arrival_while_whole_fleet_failed_buffers_and_replays(self):
        """Satellite regression: a simultaneous whole-fleet failure must
        park arrivals for the autoscaler's replacements, not raise."""
        tasks = make_tasks([(0.0, 1.0), (0.5, 1.0), (0.6, 1.0)])
        autoscaler = ReactiveAutoscaler(
            AutoscalerConfig(min_nodes=1, max_nodes=4, check_interval=0.2, cooldown=0.0)
        )
        cluster = ClusterSimulator(
            config=chaos_config(), autoscaler=autoscaler, chaos=ChaosSpec()
        )
        cluster.submit(tasks)

        def wipe_fleet():
            for node in list(cluster.nodes):
                if not node.state.terminal:
                    cluster._fail_node(node, "crash")

        at(cluster, 0.4, wipe_fleet)
        result = cluster.run()
        assert result.nodes_failed == 2
        assert result.nodes_added >= 1
        assert result.completion_ratio == 1.0
        assert autoscaler.replacements >= 1

    def test_arrival_while_whole_fleet_draining_buffers(self):
        """A fleet mid-revocation (all DRAINING) is not a dead fleet: the
        arrival waits in the backlog and the autoscaler regrows capacity."""
        tasks = make_tasks([(0.0, 2.0), (1.0, 1.0)])
        autoscaler = ReactiveAutoscaler(
            AutoscalerConfig(min_nodes=1, max_nodes=4, check_interval=0.2, cooldown=0.0)
        )
        cluster = ClusterSimulator(
            config=chaos_config(num_nodes=1), autoscaler=autoscaler
        )
        cluster.submit(tasks)
        # Node 0 is busy with the first task when it starts draining, so it
        # stays DRAINING (non-terminal) when the second task arrives.
        at(cluster, 0.5, lambda: cluster.drain_node(cluster.nodes[0]))
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert result.nodes_added >= 1

    def test_autoscaler_replaces_failed_capacity_like_for_like(self):
        config = ClusterConfig(
            node_specs=(
                NodeSpec(cores=4, label="big"),
                NodeSpec(cores=1, label="little"),
            ),
            scheduler="fifo",
            dispatcher="round_robin",
        )
        autoscaler = ReactiveAutoscaler(AutoscalerConfig(min_nodes=1, max_nodes=4))
        cluster = ClusterSimulator(
            config=config, autoscaler=autoscaler, chaos=ChaosSpec()
        )
        cluster.submit(make_tasks([(0.0, 2.0), (0.0, 2.0), (0.0, 2.0)]))
        at(cluster, 0.5, lambda: cluster._fail_node(cluster.nodes[0], "crash"))
        result = cluster.run()
        assert autoscaler.replacements == 1
        assert result.nodes_added == 1
        # The replacement boots with the failed node's own shape.
        assert result.node_stats[2]["cores"] == 4.0
        assert result.completion_ratio == 1.0

    def test_replacement_respects_max_nodes(self):
        autoscaler = ReactiveAutoscaler(AutoscalerConfig(min_nodes=1, max_nodes=2))
        cluster = ClusterSimulator(
            config=chaos_config(num_nodes=3), autoscaler=autoscaler, chaos=ChaosSpec()
        )
        cluster.submit(make_tasks([(0.0, 2.0), (0.0, 2.0), (0.0, 2.0)]))
        at(cluster, 0.5, lambda: cluster._fail_node(cluster.nodes[0], "crash"))
        result = cluster.run()
        # Two survivors already fill the max_nodes budget: no replacement.
        assert autoscaler.replacements == 0
        assert result.nodes_added == 0
        assert result.completion_ratio == 1.0


# --------------------------------------------------------------------- races


class TestFailureRaces:
    def test_node_fails_while_task_on_the_wire(self):
        """Ingress race: the landing is lost and the task re-enters."""
        task = Task(task_id=0, arrival_time=0.0, service_time=1.0)
        cluster = ClusterSimulator(
            config=chaos_config(network=NetworkSpec(rtt=1.0)),
            chaos=ChaosSpec(),
        )
        cluster.submit([task])
        at(cluster, 0.25, lambda: cluster._fail_node(cluster.nodes[0], "crash"))
        result = cluster.run()
        # Dispatched to node 0 at t=0 (lands 0.5), node 0 dies at 0.25: the
        # landing is lost at 0.5, the task re-enters, pays the wire again to
        # node 1 and finishes at 2.0 — exactly once.
        assert result.completion_ratio == 1.0
        assert result.tasks_lost == 1
        assert result.node_stats[0]["lost"] == 1.0
        assert result.tasks[0].completion_time == pytest.approx(2.0)
        assert cluster.nodes[0].ingress == 0
        completed = sum(s["completed"] for s in result.node_stats.values())
        assert completed == 1

    def test_thief_fails_while_steal_in_transit(self):
        """A stolen task whose thief dies mid-flight round-trips home and
        completes exactly once; the void steal is not counted."""
        tasks = [
            Task(task_id=0, arrival_time=0.0, service_time=5.0),  # runs on node 0
            Task(task_id=1, arrival_time=0.0, service_time=0.2),  # runs on node 1
            Task(task_id=2, arrival_time=0.0, service_time=5.0),  # queues on node 0
        ]
        cluster = ClusterSimulator(
            config=chaos_config(
                migration="work_stealing",
                migration_kwargs={"interval": 0.3, "delay": 0.5},
            ),
            chaos=ChaosSpec(),
        )
        cluster.submit(tasks)
        # Node 1 goes idle at 0.2, steals task 2 at the 0.3 tick (in flight
        # until 0.8) and dies at 0.5 with the task on the wire.
        at(cluster, 0.5, lambda: cluster._fail_node(cluster.nodes[1], "crash"))
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert result.tasks_migrated == 0  # the round trip is not a migration
        stolen_in = sum(s["stolen_in"] for s in result.node_stats.values())
        assert stolen_in == result.tasks_migrated
        stolen_away = sum(s["stolen_away"] for s in result.node_stats.values())
        assert stolen_away == 0  # voided on the way back
        completed = sum(s["completed"] for s in result.node_stats.values())
        assert completed == 3

    def test_armed_retry_timer_races_node_failure(self):
        """A retry timer armed on a node that fails must not double-land the
        task it was watching."""
        tasks = [
            Task(task_id=0, arrival_time=0.0, service_time=5.0),  # runs on node 0
            Task(task_id=1, arrival_time=0.0, service_time=5.0),  # runs on node 1
            Task(task_id=2, arrival_time=0.0, service_time=1.0),  # queues on node 0
        ]
        cluster = ClusterSimulator(
            config=chaos_config(),
            middleware=[TimeoutRetryMiddleware(timeout=1.0, max_retries=3, backoff=0.1)],
            chaos=ChaosSpec(),
        )
        cluster.submit(tasks)
        # Node 0 fails at 0.5 while task 2's retry timer (armed at t=0,
        # firing at t=1.0) is still pending.
        at(cluster, 0.5, lambda: cluster._fail_node(cluster.nodes[0], "crash"))
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert result.tasks_lost == 2
        completed = sum(s["completed"] for s in result.node_stats.values())
        assert completed == 3
        assert len(result.finished_tasks) + result.tasks_rejected == 3


# ----------------------------------------------------------------- telemetry


class TestChaosTelemetry:
    def test_crash_emits_instants_and_counters(self):
        from repro.telemetry import TelemetrySpec

        cluster = ClusterSimulator(
            config=chaos_config(),
            chaos=ChaosSpec(),
            telemetry=TelemetrySpec(),
        )
        cluster.submit(make_tasks([(0.0, 3.0), (0.0, 3.0)]))
        at(cluster, 1.0, lambda: cluster._fail_node(cluster.nodes[0], "crash"))
        result = cluster.run()
        snapshot = result.telemetry
        assert snapshot is not None
        names = [i[0] for i in snapshot.instants]
        assert "node-crash" in names
        assert "task-lost" in names
        counters = snapshot.counters
        assert counters.get("chaos.node_failures.crash") == 1.0
        assert counters.get("chaos.tasks_lost") == 1.0

    def test_revocation_emits_warning_then_failure(self):
        from repro.telemetry import TelemetrySpec

        cluster = ClusterSimulator(
            config=chaos_config(),
            chaos=ChaosSpec(warning=1.0),
            telemetry=TelemetrySpec(),
        )
        cluster.submit(make_tasks([(0.0, 5.0), (0.0, 5.0)]))
        at(cluster, 0.5, lambda: cluster._chaos._fire_revocation(cluster.nodes[0]))
        result = cluster.run()
        snapshot = result.telemetry
        names = [i[0] for i in snapshot.instants]
        assert "revocation-warning" in names
        assert "node-revocation" in names
        counters = snapshot.counters
        assert counters.get("chaos.revocation_warnings") == 1.0
        assert counters.get("chaos.node_failures.revocation") == 1.0
        # The warning span is balanced: opened at the warning, closed at
        # the kill.
        warning_spans = [s for s in snapshot.spans if s[0] == "revocation-warning"]
        assert len(warning_spans) == 1

    def test_escape_and_checkpoint_counters(self):
        from repro.telemetry import TelemetrySpec

        cluster = ClusterSimulator(
            config=chaos_config(
                migration="work_stealing",
                migration_kwargs={"interval": 10.0, "checkpoint": True},
            ),
            chaos=ChaosSpec(warning=2.0),
            telemetry=TelemetrySpec(),
        )
        cluster.submit([Task(task_id=0, arrival_time=0.0, service_time=10.0)])
        at(cluster, 1.0, lambda: cluster._chaos._fire_revocation(cluster.nodes[0]))
        result = cluster.run()
        counters = result.telemetry.counters
        assert counters.get("chaos.escapes") == 1.0
        assert counters.get("migration.checkpoints") == 1.0
        assert result.tasks_checkpointed == 1


# ---------------------------------------------------------------- experiment


def test_cluster_chaos_experiment_claims_hold_at_test_scale():
    output = run_experiment("cluster_chaos", scale=0.1)
    data = output.data
    assert data["crash_fired"]
    assert data["revocations_fired"]
    assert data["middleware_beats_bare_p99"]
    assert data["middleware_fewer_lost"]
    assert data["checkpoint_less_waste"]
