"""Unit tests for the virtual clock and the event queue."""

import pytest

from repro.simulation.clock import TIME_EPSILON, VirtualClock, times_equal
from repro.simulation.events import EventPriority, EventQueue


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advances_forward(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_rejects_moving_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_tolerates_float_noise(self):
        clock = VirtualClock(1.0)
        clock.advance_to(1.0 - TIME_EPSILON / 2)
        assert clock.now == 1.0

    def test_reset(self):
        clock = VirtualClock(4.0)
        clock.reset()
        assert clock.now == 0.0

    def test_times_equal_helper(self):
        assert times_equal(1.0, 1.0 + TIME_EPSILON / 10)
        assert not times_equal(1.0, 1.1)


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=EventPriority.TIMER, tag="timer")
        queue.push(1.0, lambda: None, priority=EventPriority.COMPLETION, tag="completion")
        queue.push(1.0, lambda: None, priority=EventPriority.ARRIVAL, tag="arrival")
        order = [queue.pop().tag for _ in range(3)]
        assert order == ["completion", "arrival", "timer"]

    def test_sequence_breaks_equal_priority_ties(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, tag="first")
        queue.push(1.0, lambda: None, tag="second")
        assert queue.pop().tag == "first"
        assert queue.pop().tag == "second"

    def test_cancellation_skips_event(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None, tag="cancel-me")
        queue.push(2.0, lambda: None, tag="keep")
        handle.cancel()
        assert handle.cancelled
        assert queue.pop().tag == "keep"
        assert queue.pop() is None

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 5.0

    def test_len_counts_live_events_only(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        assert len(queue) == 1

    def test_bool_reflects_liveness(self):
        queue = EventQueue()
        assert not queue
        handle = queue.push(1.0, lambda: None)
        assert queue
        handle.cancel()
        assert not queue

    def test_cancel_pending_by_tag(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, tag="x")
        queue.push(2.0, lambda: None, tag="x")
        queue.push(3.0, lambda: None, tag="y")
        assert queue.cancel_pending("x") == 2
        assert [e.tag for e in iter(queue.pop, None)] == ["y"]

    def test_rejects_negative_time(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-0.1, lambda: None)

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None

    def test_drain_times_sorted(self):
        queue = EventQueue()
        queue.push(3.0, lambda: None)
        queue.push(1.0, lambda: None)
        assert queue.drain_times() == [1.0, 3.0]


class TestTombstoneCompaction:
    def test_cancel_heavy_queue_compacts(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None, tag="timer") for i in range(100)]
        keep = [queue.push(1000.0 + i, lambda: None, tag="keep") for i in range(5)]
        for handle in handles:
            handle.cancel()
        # Tombstones outnumbered live events on a >=64-entry heap: the heap
        # was rebuilt towards the live horizon instead of tracking the full
        # cancellation history (later cancels may re-park tombstones until
        # the trigger next fires, so the bound is "well below 105", not 5).
        assert queue.compactions > 0
        assert len(queue) == 5
        assert len(queue._heap) < 64
        assert [e.time for e in iter(queue.pop, None)] == [h.time for h in keep]

    def test_small_heaps_stay_lazy(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(20)]
        for handle in handles[:-1]:
            handle.cancel()
        assert queue.compactions == 0
        assert len(queue._heap) == 20  # tombstones still parked in the heap
        assert queue.pop().time == 19.0

    def test_cancel_pending_triggers_compaction(self):
        queue = EventQueue()
        for i in range(90):
            queue.push(float(i), lambda: None, tag="bulk")
        queue.push(500.0, lambda: None, tag="survivor")
        assert queue.cancel_pending("bulk") == 90
        assert queue.compactions > 0
        assert len(queue._heap) == 1

    def test_compaction_preserves_pop_order(self):
        queue = EventQueue()
        handles = []
        for i in range(200):
            handles.append(queue.push(float(i % 37), lambda: None, tag=f"t{i}"))
        for i, handle in enumerate(handles):
            if i % 3:
                handle.cancel()
        # Ties at the same (time, priority) resolve by insertion order.
        expected = [
            (time, tag)
            for time, _, tag in sorted(
                (h.time, i, h.tag) for i, h in enumerate(handles) if i % 3 == 0
            )
        ]
        popped = [(e.time, e.tag) for e in iter(queue.pop, None)]
        assert popped == expected

    def test_double_cancel_does_not_skew_live_count(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        first.cancel()
        assert len(queue) == 1


class TestPushSequenced:
    def test_sequenced_arrivals_sort_before_runtime_pushes(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=EventPriority.ARRIVAL, tag="runtime")
        queue.push_sequenced(
            1.0, -(1 << 62), priority=EventPriority.ARRIVAL, tag="streamed"
        )
        assert [e.tag for e in iter(queue.pop, None)] == ["streamed", "runtime"]

    def test_rejects_non_negative_seq(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push_sequenced(1.0, 0)
        with pytest.raises(ValueError):
            queue.push_sequenced(1.0, 7)

    def test_rejects_negative_time(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push_sequenced(-0.5, -1)
