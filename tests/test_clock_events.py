"""Unit tests for the virtual clock and the event queue."""

import pytest

from repro.simulation.clock import TIME_EPSILON, VirtualClock, times_equal
from repro.simulation.events import EventPriority, EventQueue


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advances_forward(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_rejects_moving_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_tolerates_float_noise(self):
        clock = VirtualClock(1.0)
        clock.advance_to(1.0 - TIME_EPSILON / 2)
        assert clock.now == 1.0

    def test_reset(self):
        clock = VirtualClock(4.0)
        clock.reset()
        assert clock.now == 0.0

    def test_times_equal_helper(self):
        assert times_equal(1.0, 1.0 + TIME_EPSILON / 10)
        assert not times_equal(1.0, 1.1)


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=EventPriority.TIMER, tag="timer")
        queue.push(1.0, lambda: None, priority=EventPriority.COMPLETION, tag="completion")
        queue.push(1.0, lambda: None, priority=EventPriority.ARRIVAL, tag="arrival")
        order = [queue.pop().tag for _ in range(3)]
        assert order == ["completion", "arrival", "timer"]

    def test_sequence_breaks_equal_priority_ties(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, tag="first")
        queue.push(1.0, lambda: None, tag="second")
        assert queue.pop().tag == "first"
        assert queue.pop().tag == "second"

    def test_cancellation_skips_event(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None, tag="cancel-me")
        queue.push(2.0, lambda: None, tag="keep")
        handle.cancel()
        assert handle.cancelled
        assert queue.pop().tag == "keep"
        assert queue.pop() is None

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 5.0

    def test_len_counts_live_events_only(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        assert len(queue) == 1

    def test_bool_reflects_liveness(self):
        queue = EventQueue()
        assert not queue
        handle = queue.push(1.0, lambda: None)
        assert queue
        handle.cancel()
        assert not queue

    def test_cancel_pending_by_tag(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, tag="x")
        queue.push(2.0, lambda: None, tag="x")
        queue.push(3.0, lambda: None, tag="y")
        assert queue.cancel_pending("x") == 2
        assert [e.tag for e in iter(queue.pop, None)] == ["y"]

    def test_rejects_negative_time(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-0.1, lambda: None)

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None

    def test_drain_times_sorted(self):
        queue = EventQueue()
        queue.push(3.0, lambda: None)
        queue.push(1.0, lambda: None)
        assert queue.drain_times() == [1.0, 3.0]
