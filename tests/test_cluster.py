"""Cluster simulator: dispatch plumbing, lifecycle, determinism."""

import pytest

from repro.simulation.task import make_tasks
from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    NodeState,
    simulate_cluster,
)
from repro.cluster.config import DEFAULT_NODE_BOOT_TIME
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationError, simulate
from repro.workload.generator import scaled_workload


def small_config(**overrides) -> ClusterConfig:
    defaults = dict(num_nodes=2, cores_per_node=2, scheduler="fifo", dispatcher="round_robin")
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestDispatchPlumbing:
    def test_all_tasks_finish_and_carry_node_ids(self):
        tasks = make_tasks([(0.0, 1.0), (0.0, 1.0), (0.1, 0.5), (0.2, 0.5)])
        result = simulate_cluster(tasks, config=small_config())
        assert result.completion_ratio == 1.0
        for task in result.finished_tasks:
            assert task.metadata["node_id"] in result.node_results

    def test_round_robin_spreads_across_nodes(self):
        tasks = make_tasks([(i * 0.01, 0.1) for i in range(8)])
        result = simulate_cluster(tasks, config=small_config(num_nodes=4))
        counts = result.tasks_per_node()
        assert all(count == 2 for count in counts.values())

    def test_node_results_partition_the_fleet(self):
        tasks = make_tasks([(i * 0.05, 0.3) for i in range(10)])
        result = simulate_cluster(tasks, config=small_config(num_nodes=3))
        per_node = sum(
            len(node_result.finished_tasks)
            for node_result in result.node_results.values()
        )
        assert per_node == len(result.finished_tasks) == 10

    def test_fleet_summary_pools_all_nodes(self):
        tasks = make_tasks([(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)])
        result = simulate_cluster(tasks, config=small_config(num_nodes=3))
        summary = result.summary()
        assert summary.count == 3
        assert summary.makespan == pytest.approx(3.0)

    def test_single_node_cluster_matches_single_machine(self):
        """A 1-node cluster is exactly the standalone simulator."""
        specs = [(i * 0.1, 0.4 + (i % 3) * 0.3) for i in range(20)]
        cluster = simulate_cluster(
            make_tasks(specs), config=small_config(num_nodes=1, cores_per_node=3)
        )
        single = simulate(
            FIFOScheduler(),
            make_tasks(specs),
            config=SimulationConfig(num_cores=3, record_utilization=False),
        )
        assert cluster.summary().p99_turnaround == pytest.approx(
            single.summary().p99_turnaround
        )
        assert cluster.summary().total_execution == pytest.approx(
            single.summary().total_execution
        )

    def test_submit_while_running_rejected(self):
        cluster = ClusterSimulator(config=small_config())
        cluster._running = True
        with pytest.raises(SimulationError):
            cluster.submit(make_tasks([(0.0, 1.0)]))


class TestNodeLifecycle:
    def test_deliver_to_draining_node_rejected(self):
        cluster = ClusterSimulator(config=small_config())
        node = cluster.nodes[0]
        node.start_draining()
        with pytest.raises(RuntimeError):
            node.deliver(make_tasks([(0.0, 1.0)])[0], now=0.0)

    def test_retire_with_inflight_rejected(self):
        cluster = ClusterSimulator(config=small_config())
        node = cluster.nodes[0]
        node.inflight = 1
        with pytest.raises(RuntimeError):
            node.retire(now=0.0)

    def test_booting_node_pays_cold_start(self):
        """Work arriving before any node is up waits for the boot to finish."""
        cluster = ClusterSimulator(config=small_config(num_nodes=1))
        cluster.drain_node(cluster.nodes[0])  # idle, retires immediately
        assert cluster.nodes[0].state is NodeState.RETIRED
        cluster.add_node(booting=True)
        tasks = make_tasks([(0.0, 0.5)])
        cluster.submit(tasks)
        result = cluster.run()
        assert result.completion_ratio == 1.0
        task = result.finished_tasks[0]
        assert task.response_time >= DEFAULT_NODE_BOOT_TIME
        assert result.nodes_added == 1
        assert result.nodes_removed == 1

    def test_arrival_with_no_nodes_at_all_is_an_error(self):
        cluster = ClusterSimulator(config=small_config(num_nodes=1))
        cluster.drain_node(cluster.nodes[0])
        cluster.submit(make_tasks([(0.0, 0.5)]))
        with pytest.raises(SimulationError):
            cluster.run()

    def test_draining_node_finishes_its_work_then_retires(self):
        cluster = ClusterSimulator(config=small_config(num_nodes=2))
        cluster.submit(make_tasks([(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]))
        # Drain node 1 half-way through the run via a scheduled event.
        node = cluster.nodes[1]
        cluster.events.push(0.5, lambda: cluster.drain_node(node))
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert node.state is NodeState.RETIRED
        assert node.tasks_completed > 0


class TestDeterminism:
    @pytest.mark.parametrize("dispatcher", ["random", "power_of_two", "consistent_hash"])
    def test_same_seed_same_fleet_p99(self, dispatcher):
        config = small_config(
            num_nodes=4, cores_per_node=4, dispatcher=dispatcher, seed=11
        )
        first = simulate_cluster(scaled_workload(600, minutes=2), config=config)
        second = simulate_cluster(scaled_workload(600, minutes=2), config=config)
        assert first.summary().p99_turnaround == second.summary().p99_turnaround
        assert first.summary().p99_response == second.summary().p99_response
        assert first.tasks_per_node() == second.tasks_per_node()

    def test_different_seed_changes_random_routing(self):
        workload = [(i * 0.01, 0.2) for i in range(64)]
        first = simulate_cluster(
            make_tasks(workload),
            config=small_config(num_nodes=4, dispatcher="random", seed=1),
        )
        second = simulate_cluster(
            make_tasks(workload),
            config=small_config(num_nodes=4, dispatcher="random", seed=2),
        )
        assert first.tasks_per_node() != second.tasks_per_node()


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(cores_per_node=0)
        with pytest.raises(ValueError):
            ClusterConfig(node_boot_time=-1.0)

    def test_with_dispatcher_and_with_nodes(self):
        config = ClusterConfig(num_nodes=4, dispatcher="random")
        assert config.with_dispatcher("jsq").dispatcher == "jsq"
        assert config.with_nodes(8).num_nodes == 8

    def test_node_config_resized_to_cores_per_node(self):
        config = ClusterConfig(
            cores_per_node=6, node_config=SimulationConfig(num_cores=50)
        )
        assert config.build_node_config().num_cores == 6

    def test_hybrid_scheduler_runs_per_node(self):
        """Per-node schedulers come from the registry — including the hybrid."""
        config = small_config(
            num_nodes=2,
            cores_per_node=4,
            scheduler="fifo_preempt",
            scheduler_kwargs={"quantum": 0.5},
        )
        result = simulate_cluster(make_tasks([(0.0, 1.0)] * 8), config=config)
        assert result.completion_ratio == 1.0
        assert result.scheduler_name == "fifo_preempt"


class TestFleetSeries:
    def test_active_node_series_recorded(self):
        result = simulate_cluster(
            make_tasks([(0.0, 0.5), (0.1, 0.5)]), config=small_config()
        )
        points = result.series_values("cluster.active_nodes")
        assert points
        assert points[0].value == 2.0


class TestEngineParity:
    """Cluster nodes must honour the same engine contract as standalone runs."""

    def test_scheduler_on_start_fires_for_initial_fleet(self):
        """CFS load balancing / hybrid sampling arm via on_start — it must run."""
        cluster = ClusterSimulator(config=small_config(scheduler="cfs"))
        cluster.submit(make_tasks([(0.0, 0.5), (0.0, 0.5)]))
        cluster.run()
        for node in cluster.nodes:
            assert node._started
            assert node.activated_at == 0.0

    def test_cfs_balance_timer_actually_armed(self):
        """Activating a CFS node must put its periodic balance timer on the
        shared event queue (the regression was on_start never firing)."""
        config = small_config(num_nodes=1, cores_per_node=4, scheduler="cfs")
        cluster = ClusterSimulator(config=config)
        cluster.nodes[0].activate(0.0)
        tags = [event.tag for _, event in cluster.events._heap if not event.cancelled]
        assert "cfs-load-balance" in tags

    def test_node_config_record_utilization_produces_samples(self):
        config = small_config(
            num_nodes=2,
            node_config=SimulationConfig(
                num_cores=2, record_utilization=True, utilization_window=0.25
            ),
        )
        result = simulate_cluster(make_tasks([(0.0, 1.0)] * 4), config=config)
        for node_result in result.node_results.values():
            assert node_result.utilization_samples

    def test_node_config_max_simulated_time_is_honoured(self):
        config = small_config(
            num_nodes=1,
            node_config=SimulationConfig(
                num_cores=2, record_utilization=False, max_simulated_time=1.0
            ),
        )
        result = simulate_cluster(make_tasks([(0.0, 5.0)]), config=config)
        assert result.simulated_time == pytest.approx(1.0)
        assert result.completion_ratio < 1.0
