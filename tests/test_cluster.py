"""Cluster simulator: dispatch plumbing, lifecycle, determinism, hetero fleets."""

import pytest

from repro.simulation.task import make_tasks
from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    NodeSpec,
    NodeState,
    available_dispatchers,
    simulate_cluster,
)
from repro.cluster.config import DEFAULT_NODE_BOOT_TIME
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationError, simulate
from repro.workload.generator import scaled_workload


def small_config(**overrides) -> ClusterConfig:
    defaults = dict(num_nodes=2, cores_per_node=2, scheduler="fifo", dispatcher="round_robin")
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestDispatchPlumbing:
    def test_all_tasks_finish_and_carry_node_ids(self):
        tasks = make_tasks([(0.0, 1.0), (0.0, 1.0), (0.1, 0.5), (0.2, 0.5)])
        result = simulate_cluster(tasks, config=small_config())
        assert result.completion_ratio == 1.0
        for task in result.finished_tasks:
            assert task.metadata["node_id"] in result.node_results

    def test_round_robin_spreads_across_nodes(self):
        tasks = make_tasks([(i * 0.01, 0.1) for i in range(8)])
        result = simulate_cluster(tasks, config=small_config(num_nodes=4))
        counts = result.tasks_per_node()
        assert all(count == 2 for count in counts.values())

    def test_node_results_partition_the_fleet(self):
        tasks = make_tasks([(i * 0.05, 0.3) for i in range(10)])
        result = simulate_cluster(tasks, config=small_config(num_nodes=3))
        per_node = sum(
            len(node_result.finished_tasks)
            for node_result in result.node_results.values()
        )
        assert per_node == len(result.finished_tasks) == 10

    def test_fleet_summary_pools_all_nodes(self):
        tasks = make_tasks([(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)])
        result = simulate_cluster(tasks, config=small_config(num_nodes=3))
        summary = result.summary()
        assert summary.count == 3
        assert summary.makespan == pytest.approx(3.0)

    def test_single_node_cluster_matches_single_machine(self):
        """A 1-node cluster is exactly the standalone simulator."""
        specs = [(i * 0.1, 0.4 + (i % 3) * 0.3) for i in range(20)]
        cluster = simulate_cluster(
            make_tasks(specs), config=small_config(num_nodes=1, cores_per_node=3)
        )
        single = simulate(
            FIFOScheduler(),
            make_tasks(specs),
            config=SimulationConfig(num_cores=3, record_utilization=False),
        )
        assert cluster.summary().p99_turnaround == pytest.approx(
            single.summary().p99_turnaround
        )
        assert cluster.summary().total_execution == pytest.approx(
            single.summary().total_execution
        )

    def test_submit_while_running_rejected(self):
        cluster = ClusterSimulator(config=small_config())
        cluster._running = True
        with pytest.raises(SimulationError):
            cluster.submit(make_tasks([(0.0, 1.0)]))


class TestNodeLifecycle:
    def test_deliver_to_draining_node_rejected(self):
        cluster = ClusterSimulator(config=small_config())
        node = cluster.nodes[0]
        node.start_draining()
        with pytest.raises(RuntimeError):
            node.deliver(make_tasks([(0.0, 1.0)])[0], now=0.0)

    def test_retire_with_inflight_rejected(self):
        cluster = ClusterSimulator(config=small_config())
        node = cluster.nodes[0]
        node.inflight = 1
        with pytest.raises(RuntimeError):
            node.retire(now=0.0)

    def test_booting_node_pays_cold_start(self):
        """Work arriving before any node is up waits for the boot to finish."""
        cluster = ClusterSimulator(config=small_config(num_nodes=1))
        cluster.drain_node(cluster.nodes[0])  # idle, retires immediately
        assert cluster.nodes[0].state is NodeState.RETIRED
        cluster.add_node(booting=True)
        tasks = make_tasks([(0.0, 0.5)])
        cluster.submit(tasks)
        result = cluster.run()
        assert result.completion_ratio == 1.0
        task = result.finished_tasks[0]
        assert task.response_time >= DEFAULT_NODE_BOOT_TIME
        assert result.nodes_added == 1
        assert result.nodes_removed == 1

    def test_arrival_with_no_nodes_at_all_is_an_error(self):
        cluster = ClusterSimulator(config=small_config(num_nodes=1))
        cluster.drain_node(cluster.nodes[0])
        cluster.submit(make_tasks([(0.0, 0.5)]))
        with pytest.raises(SimulationError):
            cluster.run()

    def test_draining_node_finishes_its_work_then_retires(self):
        cluster = ClusterSimulator(config=small_config(num_nodes=2))
        cluster.submit(make_tasks([(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]))
        # Drain node 1 half-way through the run via a scheduled event.
        node = cluster.nodes[1]
        cluster.events.push(0.5, lambda: cluster.drain_node(node))
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert node.state is NodeState.RETIRED
        assert node.tasks_completed > 0


class TestWholeFleetBootingOrDraining:
    """Arrivals while *no* node is active: the waiting backlog and the
    "no active or booting node" error, with and without a network RTT."""

    def all_booting_cluster(self, rtt: float = 0.0, booting: int = 2, cores: int = 1):
        """A cluster whose entire fleet is still paying its cold start."""
        from repro.cluster import NetworkSpec

        config = small_config(
            num_nodes=1,
            cores_per_node=cores,
            dispatcher="round_robin",
            network=NetworkSpec(rtt=rtt),
        )
        cluster = ClusterSimulator(config=config)
        cluster.drain_node(cluster.nodes[0])  # idle: retires immediately
        for _ in range(booting):
            cluster.add_node(booting=True)
        return cluster

    @pytest.mark.parametrize("rtt", [0.0, 0.2])
    def test_backlog_replay_preserves_arrival_order(self, rtt):
        """The parked backlog replays in exactly the (time, priority, seq)
        order the arrival events popped in.

        The whole backlog is replayed by the *first* node to finish booting
        (both boots share one timestamp; the lower seq wins the backlog), so
        on that 1-core FIFO node the service order — first_run_time — must
        follow arrival order exactly.
        """
        cluster = self.all_booting_cluster(rtt=rtt)
        # All four arrive (in seq order at two distinct times) before the
        # first boot completes at DEFAULT_NODE_BOOT_TIME.
        cluster.submit(make_tasks([(0.0, 0.3), (0.0, 0.3), (0.01, 0.3), (0.02, 0.3)]))
        result = cluster.run()
        assert result.completion_ratio == 1.0
        tasks = sorted(result.finished_tasks, key=lambda t: t.task_id)
        replayer = tasks[0].metadata["node_id"]
        assert all(task.metadata["node_id"] == replayer for task in tasks)
        starts = [task.first_run_time for task in tasks]
        assert starts == sorted(starts)
        completions = [task.completion_time for task in tasks]
        assert completions == sorted(completions)

    @pytest.mark.parametrize("rtt", [0.0, 0.2])
    def test_same_timestamp_backlog_keeps_seq_order(self, rtt):
        """Tasks sharing one arrival timestamp park in submission (seq)
        order and replay in that same order."""
        cluster = self.all_booting_cluster(rtt=rtt, booting=1)
        cluster.submit(make_tasks([(0.0, 0.2)] * 4))
        seen = []
        original = cluster._dispatch

        def spy(task):
            seen.append(task.task_id)
            original(task)

        cluster._dispatch = spy
        result = cluster.run()
        assert result.completion_ratio == 1.0
        # First sweep: the four same-timestamp arrivals pop in seq order and
        # park; second sweep: the boot replays the backlog in the same order.
        assert seen == [0, 1, 2, 3, 0, 1, 2, 3]

    @pytest.mark.parametrize("rtt", [0.0, 0.2])
    def test_error_fires_only_with_no_booting_node(self, rtt):
        """The "no active or booting node" error is precise: a fleet that is
        merely *booting* parks arrivals instead of failing, an all-retired
        fleet fails loudly."""
        from repro.cluster import NetworkSpec

        config = small_config(
            num_nodes=1, cores_per_node=2, network=NetworkSpec(rtt=rtt)
        )
        alive = ClusterSimulator(config=config)
        alive.drain_node(alive.nodes[0])
        alive.add_node(booting=True)
        alive.submit(make_tasks([(0.0, 0.2)]))
        assert alive.run().completion_ratio == 1.0

        dead = ClusterSimulator(config=config)
        dead.drain_node(dead.nodes[0])
        dead.submit(make_tasks([(0.0, 0.2)]))
        with pytest.raises(SimulationError, match="no active or booting node"):
            dead.run()


#: The two fleet shapes every dispatcher's determinism is checked on.
FLEET_SHAPES = {
    "homogeneous": dict(num_nodes=4, cores_per_node=4),
    "heterogeneous": dict(
        node_specs=(
            NodeSpec(cores=8, count=1),
            NodeSpec(cores=4, count=1),
            NodeSpec(cores=2, speed_factor=2.0, count=2),
        )
    ),
}


def run_signature(result):
    """Everything observable about a run, for bit-identical comparison."""
    return [
        (t.task_id, t.completion_time, t.first_run_time,
         t.metadata.get("node_id"), t.metadata.get("node_migrations", 0))
        for t in result.tasks
    ]


class TestDeterminism:
    @pytest.mark.parametrize("fleet", sorted(FLEET_SHAPES))
    @pytest.mark.parametrize("dispatcher", available_dispatchers())
    def test_same_seed_is_bit_identical_for_every_dispatcher(
        self, dispatcher, fleet
    ):
        """Seed sweep: every dispatcher x fleet shape replays exactly."""
        config = ClusterConfig(
            scheduler="fifo", dispatcher=dispatcher, seed=11, **FLEET_SHAPES[fleet]
        )
        first = simulate_cluster(scaled_workload(300, minutes=1), config=config)
        second = simulate_cluster(scaled_workload(300, minutes=1), config=config)
        assert run_signature(first) == run_signature(second)
        assert first.tasks_per_node() == second.tasks_per_node()

    @pytest.mark.parametrize("fleet", sorted(FLEET_SHAPES))
    @pytest.mark.parametrize("dispatcher", available_dispatchers())
    def test_every_task_completes_exactly_once(self, dispatcher, fleet):
        config = ClusterConfig(
            scheduler="fifo", dispatcher=dispatcher, seed=3, **FLEET_SHAPES[fleet]
        )
        result = simulate_cluster(scaled_workload(300, minutes=1), config=config)
        assert result.completion_ratio == 1.0
        per_node_ids = [
            t.task_id
            for node_result in result.node_results.values()
            for t in node_result.finished_tasks
        ]
        # Exactly once: node results partition the task set, no duplicates.
        assert sorted(per_node_ids) == sorted(t.task_id for t in result.tasks)

    @pytest.mark.parametrize("dispatcher", ["random", "power_of_two", "consistent_hash"])
    def test_same_seed_same_fleet_p99(self, dispatcher):
        config = small_config(
            num_nodes=4, cores_per_node=4, dispatcher=dispatcher, seed=11
        )
        first = simulate_cluster(scaled_workload(600, minutes=2), config=config)
        second = simulate_cluster(scaled_workload(600, minutes=2), config=config)
        assert first.summary().p99_turnaround == second.summary().p99_turnaround
        assert first.summary().p99_response == second.summary().p99_response
        assert first.tasks_per_node() == second.tasks_per_node()

    def test_different_seed_changes_random_routing(self):
        workload = [(i * 0.01, 0.2) for i in range(64)]
        first = simulate_cluster(
            make_tasks(workload),
            config=small_config(num_nodes=4, dispatcher="random", seed=1),
        )
        second = simulate_cluster(
            make_tasks(workload),
            config=small_config(num_nodes=4, dispatcher="random", seed=2),
        )
        assert first.tasks_per_node() != second.tasks_per_node()


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(cores_per_node=0)
        with pytest.raises(ValueError):
            ClusterConfig(node_boot_time=-1.0)

    def test_with_dispatcher_and_with_nodes(self):
        config = ClusterConfig(num_nodes=4, dispatcher="random")
        assert config.with_dispatcher("jsq").dispatcher == "jsq"
        assert config.with_nodes(8).num_nodes == 8

    def test_node_config_resized_to_cores_per_node(self):
        config = ClusterConfig(
            cores_per_node=6, node_config=SimulationConfig(num_cores=50)
        )
        assert config.build_node_config().num_cores == 6

    def test_hybrid_scheduler_runs_per_node(self):
        """Per-node schedulers come from the registry — including the hybrid."""
        config = small_config(
            num_nodes=2,
            cores_per_node=4,
            scheduler="fifo_preempt",
            scheduler_kwargs={"quantum": 0.5},
        )
        result = simulate_cluster(make_tasks([(0.0, 1.0)] * 8), config=config)
        assert result.completion_ratio == 1.0
        assert result.scheduler_name == "fifo_preempt"


class TestFleetSeries:
    def test_active_node_series_recorded(self):
        result = simulate_cluster(
            make_tasks([(0.0, 0.5), (0.1, 0.5)]), config=small_config()
        )
        points = result.series_values("cluster.active_nodes")
        assert points
        assert points[0].value == 2.0


class TestEngineParity:
    """Cluster nodes must honour the same engine contract as standalone runs."""

    def test_scheduler_on_start_fires_for_initial_fleet(self):
        """CFS load balancing / hybrid sampling arm via on_start — it must run."""
        cluster = ClusterSimulator(config=small_config(scheduler="cfs"))
        cluster.submit(make_tasks([(0.0, 0.5), (0.0, 0.5)]))
        cluster.run()
        for node in cluster.nodes:
            assert node._started
            assert node.activated_at == 0.0

    def test_cfs_balance_timer_actually_armed(self):
        """Activating a CFS node must put its periodic balance timer on the
        shared event queue (the regression was on_start never firing)."""
        config = small_config(num_nodes=1, cores_per_node=4, scheduler="cfs")
        cluster = ClusterSimulator(config=config)
        cluster.nodes[0].activate(0.0)
        tags = [event.tag for _, event in cluster.events._heap if not event.cancelled]
        assert "cfs-load-balance" in tags

    def test_node_config_record_utilization_produces_samples(self):
        config = small_config(
            num_nodes=2,
            node_config=SimulationConfig(
                num_cores=2, record_utilization=True, utilization_window=0.25
            ),
        )
        result = simulate_cluster(make_tasks([(0.0, 1.0)] * 4), config=config)
        for node_result in result.node_results.values():
            assert node_result.utilization_samples

    def test_node_config_max_simulated_time_is_honoured(self):
        config = small_config(
            num_nodes=1,
            node_config=SimulationConfig(
                num_cores=2, record_utilization=False, max_simulated_time=1.0
            ),
        )
        result = simulate_cluster(make_tasks([(0.0, 5.0)]), config=config)
        assert result.simulated_time == pytest.approx(1.0)
        assert result.completion_ratio < 1.0


class TestNodeSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)
        with pytest.raises(ValueError):
            NodeSpec(speed_factor=0.0)
        with pytest.raises(ValueError):
            NodeSpec(count=0)

    def test_capacity_is_cores_times_speed(self):
        assert NodeSpec(cores=8, speed_factor=1.5).capacity == pytest.approx(12.0)

    def test_cluster_config_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            ClusterConfig(node_specs=())
        with pytest.raises(TypeError):
            ClusterConfig(node_specs=("not-a-spec",))

    def test_num_nodes_derived_from_specs(self):
        config = ClusterConfig(
            node_specs=(NodeSpec(cores=24, count=2), NodeSpec(cores=8, count=4))
        )
        assert config.num_nodes == 6
        assert config.is_heterogeneous
        assert config.total_capacity() == pytest.approx(2 * 24 + 4 * 8)

    def test_expanded_specs_in_node_id_order(self):
        config = ClusterConfig(
            node_specs=(NodeSpec(cores=24, count=2), NodeSpec(cores=8, count=4))
        )
        cores = [spec.cores for spec in config.expanded_specs()]
        assert cores == [24, 24, 8, 8, 8, 8]
        assert all(spec.count == 1 for spec in config.expanded_specs())

    def test_scale_up_spec_is_first_listed(self):
        config = ClusterConfig(
            node_specs=(NodeSpec(cores=24, count=2), NodeSpec(cores=8, count=4))
        )
        assert config.scale_up_spec().cores == 24

    def test_homogeneous_config_unchanged(self):
        config = ClusterConfig(num_nodes=3, cores_per_node=5)
        assert not config.is_heterogeneous
        assert [s.cores for s in config.expanded_specs()] == [5, 5, 5]
        assert config.build_node_config().num_cores == 5


class TestHeterogeneousFleet:
    def test_nodes_built_to_spec(self):
        cluster = ClusterSimulator(
            config=ClusterConfig(
                node_specs=(
                    NodeSpec(cores=4, speed_factor=2.0, label="big"),
                    NodeSpec(cores=2, count=2, label="little"),
                ),
                scheduler="fifo",
                dispatcher="jsq",
            )
        )
        assert [len(n.machine) for n in cluster.nodes] == [4, 2, 2]
        assert [n.capacity for n in cluster.nodes] == [8.0, 2.0, 2.0]
        assert cluster.nodes[0].spec.label == "big"

    def test_speed_factor_accelerates_service(self):
        """A 0.5s task on a speed-2.0 core completes in 0.25s."""
        config = ClusterConfig(node_specs=(NodeSpec(cores=1, speed_factor=2.0),))
        result = simulate_cluster(make_tasks([(0.0, 0.5)]), config=config)
        task = result.finished_tasks[0]
        assert task.turnaround_time == pytest.approx(0.25)
        # Metrics still bill the demanded service, not the wall time.
        assert task.service_time == pytest.approx(0.5)

    def test_all_tasks_finish_on_mixed_fleet(self):
        config = ClusterConfig(
            node_specs=(NodeSpec(cores=4), NodeSpec(cores=1, count=3)),
            scheduler="fifo",
            dispatcher="least_loaded",
        )
        result = simulate_cluster(
            make_tasks([(i * 0.02, 0.4) for i in range(40)]), config=config
        )
        assert result.completion_ratio == 1.0
        assert set(result.node_stats) == {0, 1, 2, 3}
        assert result.node_capacity(0) == pytest.approx(4.0)

    def test_add_node_uses_scale_up_spec(self):
        config = ClusterConfig(
            node_specs=(NodeSpec(cores=6), NodeSpec(cores=2, count=2)),
        )
        cluster = ClusterSimulator(config=config)
        node = cluster.add_node(booting=False)
        assert len(node.machine) == 6

    def test_user_node_config_resized_per_spec(self):
        config = ClusterConfig(
            node_specs=(NodeSpec(cores=3, speed_factor=1.5),),
            node_config=SimulationConfig(num_cores=50, record_utilization=False),
        )
        node_config = config.build_node_config(config.expanded_specs()[0])
        assert node_config.num_cores == 3
        assert node_config.core_speed == pytest.approx(1.5)

    def test_homogeneous_fleet_keeps_user_core_speed(self):
        """Without node_specs, a node_config's explicit core_speed survives."""
        config = ClusterConfig(
            num_nodes=2,
            cores_per_node=4,
            node_config=SimulationConfig(
                num_cores=4, core_speed=2.0, record_utilization=False
            ),
        )
        assert config.build_node_config().core_speed == pytest.approx(2.0)
        # The derived specs (and hence reported capacities) agree.
        assert config.expanded_specs()[0].speed_factor == pytest.approx(2.0)
        assert config.total_capacity() == pytest.approx(16.0)
        result = simulate_cluster(make_tasks([(0.0, 0.5)]), config=config)
        assert result.finished_tasks[0].turnaround_time == pytest.approx(0.25)
        assert result.node_capacity(0) == pytest.approx(8.0)


class TestHeterogeneousClaims:
    """The cluster_scaling acceptance claims, on the experiment's own fleet.

    Uses a 25% slice of the paper's bursty 10-minute workload so the suite
    stays fast; the orderings are stable from ~20% upward and at full scale
    (recorded by the experiment itself).
    """

    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments.cluster_scaling import run_heterogeneous_sweep

        return run_heterogeneous_sweep(0.25)

    def test_capacity_normalized_jsq_beats_raw_on_p99(self, sweep):
        normalized = sweep["jsq_normalized"].summary().p99_turnaround
        raw = sweep["jsq_raw"].summary().p99_turnaround
        assert normalized < raw

    def test_work_stealing_beats_no_migration_on_p99(self, sweep):
        stealing = sweep["round_robin_stealing"].summary().p99_turnaround
        none = sweep["round_robin"].summary().p99_turnaround
        assert stealing < none
        assert sweep["round_robin_stealing"].tasks_migrated > 0

    def test_sweep_completes_every_invocation(self, sweep):
        for result in sweep.values():
            assert result.completion_ratio == 1.0
