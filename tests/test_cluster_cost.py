"""Cluster-aware cost accounting: node-hours, per-spec pricing, autoscaler."""

import pytest

from repro.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    NodeSpec,
    ReactiveAutoscaler,
    simulate_cluster,
)
from repro.cluster.simulator import ClusterSimulator
from repro.cost.cost_model import ClusterCostBreakdown, CostModel
from repro.cost.pricing import DEFAULT_PRICE_PER_CORE_HOUR, node_price_per_hour
from repro.simulation.task import Task


def _tasks(count=20, spacing=0.05, service=0.4):
    return [
        Task(task_id=i, arrival_time=i * spacing, service_time=service)
        for i in range(count)
    ]


class TestPricing:
    def test_node_price_from_capacity(self):
        assert node_price_per_hour(10.0) == pytest.approx(
            10.0 * DEFAULT_PRICE_PER_CORE_HOUR
        )
        assert node_price_per_hour(4.0, price_per_core_hour=0.1) == pytest.approx(0.4)
        with pytest.raises(ValueError):
            node_price_per_hour(0.0)
        with pytest.raises(ValueError):
            node_price_per_hour(1.0, price_per_core_hour=-1.0)

    def test_node_spec_price_validation(self):
        assert NodeSpec(price_per_hour=0.25).price_per_hour == 0.25
        with pytest.raises(ValueError):
            NodeSpec(price_per_hour=-0.1)

    def test_node_uptime_cost(self):
        model = CostModel()
        assert model.node_uptime_cost(3600.0, 0.5) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            model.node_uptime_cost(-1.0, 0.5)
        with pytest.raises(ValueError):
            model.node_uptime_cost(1.0, -0.5)


class TestClusterCost:
    def test_static_fleet_node_hours(self):
        config = ClusterConfig(num_nodes=3, cores_per_node=4, scheduler="fifo")
        result = simulate_cluster(_tasks(), config=config)
        cost = result.cost()
        assert isinstance(cost, ClusterCostBreakdown)
        # Static fleet: every node is billed for the whole run.
        assert cost.node_hours == pytest.approx(3 * result.simulated_time / 3600.0)
        expected_hourly = 4 * DEFAULT_PRICE_PER_CORE_HOUR
        assert cost.node_cost == pytest.approx(
            3 * expected_hourly * result.simulated_time / 3600.0
        )
        assert cost.total == pytest.approx(cost.user_cost + cost.node_cost)
        assert set(cost.node_costs) == {0, 1, 2}

    def test_explicit_spec_price_overrides_capacity_derivation(self):
        config = ClusterConfig(
            node_specs=(
                NodeSpec(cores=4, count=1, price_per_hour=1.0),
                NodeSpec(cores=4, count=1),
            ),
            scheduler="fifo",
        )
        result = simulate_cluster(_tasks(), config=config)
        cost = result.cost()
        uptime_hours = result.simulated_time / 3600.0
        assert cost.node_costs[0] == pytest.approx(1.0 * uptime_hours)
        assert cost.node_costs[1] == pytest.approx(
            4 * DEFAULT_PRICE_PER_CORE_HOUR * uptime_hours
        )

    def test_custom_core_hour_price(self):
        config = ClusterConfig(num_nodes=1, cores_per_node=2, scheduler="fifo")
        result = simulate_cluster(_tasks(count=5), config=config)
        cheap = result.cost(CostModel(price_per_core_hour=0.01))
        pricey = result.cost(CostModel(price_per_core_hour=1.0))
        assert pricey.node_cost == pytest.approx(100.0 * cheap.node_cost)
        # User-facing billing does not depend on node pricing.
        assert pricey.user_cost == pytest.approx(cheap.user_cost)

    def test_scaled_up_node_billed_from_commissioning(self):
        """A node added mid-run is billed boot time included, not full run."""
        config = ClusterConfig(
            num_nodes=1, cores_per_node=1, scheduler="fifo", node_boot_time=0.2
        )
        autoscaler = ReactiveAutoscaler(
            AutoscalerConfig(
                min_nodes=1,
                max_nodes=4,
                check_interval=0.25,
                scale_up_load=1.5,
                scale_down_load=0.1,
                cooldown=0.0,
            )
        )
        result = simulate_cluster(
            _tasks(count=40, spacing=0.02, service=1.0),
            config=config,
            autoscaler=autoscaler,
        )
        assert result.nodes_added > 0
        added = max(result.node_stats)
        stats = result.node_stats[added]
        assert stats["commissioned_at"] > 0.0
        assert result.node_uptime(added) == pytest.approx(
            result.simulated_time - stats["commissioned_at"]
        )
        # The boot window is inside the billed span.
        assert stats["activated_at"] == pytest.approx(
            stats["commissioned_at"] + 0.2
        )
        assert result.node_uptime(added) < result.simulated_time

    def test_drained_node_billed_until_retirement(self):
        cluster = ClusterSimulator(
            config=ClusterConfig(num_nodes=2, cores_per_node=2, scheduler="fifo")
        )
        # Round-robin alternates nodes: node 1 gets the two short tasks and,
        # once drained mid-run, retires well before node 0's long work ends.
        services = (1.0, 0.2, 1.0, 0.2)
        cluster.submit(
            Task(task_id=i, arrival_time=i * 0.01, service_time=service)
            for i, service in enumerate(services)
        )
        victim = cluster.nodes[1]
        cluster.events.push(0.05, lambda: cluster.drain_node(victim), tag="drain")
        result = cluster.run()
        stats = result.node_stats[1]
        assert stats["retired_at"] >= 0.05
        assert result.node_uptime(1) == pytest.approx(stats["retired_at"])
        assert result.node_uptime(1) < result.node_uptime(0)
        assert result.cost().node_costs[1] < result.cost().node_costs[0]

    def test_hand_built_result_without_node_stats_bills_whole_run(self):
        """cluster_cost agrees with node_hours() when lifecycle stats are absent."""
        from repro.cluster.results import ClusterResult
        from repro.simulation.results import SimulationResult
        from repro.simulation.config import SimulationConfig

        def node_result():
            return SimulationResult(
                scheduler_name="fifo",
                config=SimulationConfig(num_cores=2),
                tasks=[],
                core_stats={},
                core_groups={},
            )

        result = ClusterResult(
            dispatcher_name="round_robin",
            scheduler_name="fifo",
            config=ClusterConfig(num_nodes=2, cores_per_node=2),
            tasks=[],
            node_results={0: node_result(), 1: node_result()},
            simulated_time=7200.0,
        )
        cost = result.cost()
        assert cost.node_hours == pytest.approx(result.node_hours()) == 4.0
        assert cost.node_cost == pytest.approx(
            2 * 2 * DEFAULT_PRICE_PER_CORE_HOUR * 2.0
        )

    def test_describe_reports_cost(self):
        result = simulate_cluster(
            _tasks(count=5), config=ClusterConfig(num_nodes=2, scheduler="fifo")
        )
        text = result.describe()
        assert "node-hours consumed" in text
        assert "user billing" in text

    def test_fleet_row_includes_node_cost(self):
        from repro.analysis.fleet import FLEET_COLUMNS, fleet_metric_row

        result = simulate_cluster(
            _tasks(count=5), config=ClusterConfig(num_nodes=2, scheduler="fifo")
        )
        row = fleet_metric_row(result)
        assert "node_cost_usd" in FLEET_COLUMNS
        assert row["node_cost_usd"] > 0.0
