"""Unit tests for the columnar task-metrics store."""

import numpy as np
import pytest

from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.columns import NO_CORE, TaskColumns, merge_columns
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate
from repro.simulation.metrics import TaskMetricsSummary
from tests.conftest import make_task, make_tasks


def finished_task(task_id=0, arrival=0.0, start=1.0, end=2.0, core_id=0):
    task = make_task(task_id=task_id, arrival=arrival, service=end - start)
    task.mark_running(start, core_id=core_id)
    task.account_service(end - start)
    task.mark_finished(end)
    return task


class TestStore:
    def test_empty_store(self):
        columns = TaskColumns()
        assert len(columns) == 0
        assert not columns
        assert columns.execution().size == 0
        assert columns.summary().count == 0

    def test_append_records_task_facts(self):
        columns = TaskColumns()
        columns.append(finished_task(task_id=7, arrival=1.0, start=2.0, end=5.0, core_id=3))
        assert len(columns) == 1
        row = columns.data[0]
        assert row["task_id"] == 7
        assert row["arrival"] == 1.0
        assert row["first_run"] == 2.0
        assert row["completion"] == 5.0
        assert row["last_core"] == 3
        assert columns.execution()[0] == pytest.approx(3.0)
        assert columns.response()[0] == pytest.approx(1.0)
        assert columns.turnaround()[0] == pytest.approx(4.0)

    def test_append_rejects_unfinished(self):
        with pytest.raises(ValueError):
            TaskColumns().append(make_task())

    def test_append_after_read_flushes_incrementally(self):
        columns = TaskColumns()
        columns.append(finished_task(task_id=0))
        assert len(columns.data) == 1
        columns.append(finished_task(task_id=1, start=2.0, end=3.0))
        assert len(columns) == 2
        assert list(columns.column("task_id")) == [0, 1]

    def test_from_tasks_keeps_finished_only(self):
        tasks = [finished_task(task_id=0), make_task(task_id=1)]
        columns = TaskColumns.from_tasks(tasks)
        assert len(columns) == 1

    def test_sorted_by_task_id(self):
        columns = TaskColumns()
        columns.append(finished_task(task_id=5))
        columns.append(finished_task(task_id=2))
        columns.append(finished_task(task_id=9))
        assert list(columns.sorted_by_task_id()["task_id"]) == [2, 5, 9]

    def test_metric_accessor(self):
        columns = TaskColumns.from_tasks([finished_task()])
        assert columns.metric("execution")[0] == pytest.approx(1.0)
        assert columns.metric("service")[0] == pytest.approx(1.0)
        with pytest.raises(KeyError):
            columns.metric("nope")

    def test_merge_columns(self):
        a = TaskColumns.from_tasks([finished_task(task_id=0)])
        b = TaskColumns.from_tasks([finished_task(task_id=1), finished_task(task_id=2)])
        merged = merge_columns([a, b])
        assert len(merged) == 3
        assert list(merged.column("task_id")) == [0, 1, 2]

    def test_growth_beyond_initial_capacity(self):
        columns = TaskColumns()
        for i in range(600):
            columns.append(finished_task(task_id=i))
        assert len(columns) == 600
        assert list(columns.column("task_id")) == list(range(600))


class TestSummaryEquivalence:
    def test_from_columns_matches_from_tasks_exactly(self):
        tasks = [
            finished_task(task_id=i, arrival=0.1 * i, start=0.5 + 0.3 * i, end=1.7 + 0.9 * i)
            for i in range(25)
        ]
        by_tasks = TaskMetricsSummary.from_tasks(tasks)
        by_columns = TaskMetricsSummary.from_columns(TaskColumns.from_tasks(tasks))
        assert by_tasks == by_columns

    def test_collector_columns_match_rebuilt_columns(self):
        """The incrementally filled store agrees with a post-hoc rebuild."""
        result = simulate(
            FIFOScheduler(),
            make_tasks([(0.0, 0.5), (0.1, 1.0), (0.2, 0.3), (0.3, 0.8)]),
            config=SimulationConfig(num_cores=2),
        )
        incremental = result.task_columns()
        rebuilt = TaskColumns.from_tasks(result.tasks)
        assert len(incremental) == len(rebuilt) == 4
        # Same rows (the incremental store is in completion order).
        assert np.array_equal(
            incremental.sorted_by_task_id(), rebuilt.sorted_by_task_id()
        )
        assert incremental.summary().as_dict() == pytest.approx(
            rebuilt.summary().as_dict(), rel=1e-12, abs=1e-15
        )

    def test_no_core_sentinel(self):
        assert NO_CORE == -1
