"""Unit tests for the context-switch / time-slice cost model."""

import pytest

from repro.simulation.context_switch import DEFAULT_MODEL, ZERO_COST_MODEL, ContextSwitchModel


class TestValidation:
    def test_rejects_negative_switch_cost(self):
        with pytest.raises(ValueError):
            ContextSwitchModel(switch_cost=-1e-6)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            ContextSwitchModel(target_latency=0.0)

    def test_rejects_granularity_above_latency(self):
        with pytest.raises(ValueError):
            ContextSwitchModel(target_latency=0.01, min_granularity=0.02)


class TestTimeslice:
    def test_single_task_gets_full_latency(self):
        assert DEFAULT_MODEL.timeslice(1) == DEFAULT_MODEL.target_latency

    def test_slice_shrinks_with_more_tasks(self):
        assert DEFAULT_MODEL.timeslice(4) == pytest.approx(
            DEFAULT_MODEL.target_latency / 4
        )

    def test_slice_clamped_at_min_granularity(self):
        assert DEFAULT_MODEL.timeslice(1000) == DEFAULT_MODEL.min_granularity

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            DEFAULT_MODEL.timeslice(0)


class TestEfficiency:
    def test_single_task_is_fully_efficient(self):
        assert DEFAULT_MODEL.efficiency(1) == 1.0

    def test_efficiency_decreases_with_contention(self):
        assert DEFAULT_MODEL.efficiency(2) > DEFAULT_MODEL.efficiency(100)

    def test_efficiency_bounded(self):
        for n in (1, 2, 10, 1000):
            assert 0.0 < DEFAULT_MODEL.efficiency(n) <= 1.0

    def test_zero_cost_model_is_always_efficient(self):
        assert ZERO_COST_MODEL.efficiency(100) == 1.0


class TestSwitchCounting:
    def test_single_task_never_switches(self):
        assert DEFAULT_MODEL.switch_rate(1) == 0.0
        assert DEFAULT_MODEL.switches_over(1, 100.0) == 0.0

    def test_switch_count_scales_with_time(self):
        one_second = DEFAULT_MODEL.switches_over(10, 1.0)
        two_seconds = DEFAULT_MODEL.switches_over(10, 2.0)
        assert two_seconds == pytest.approx(2 * one_second)

    def test_rejects_negative_elapsed(self):
        with pytest.raises(ValueError):
            DEFAULT_MODEL.switches_over(2, -1.0)

    def test_scaled_copy(self):
        doubled = DEFAULT_MODEL.scaled(2.0)
        assert doubled.switch_cost == pytest.approx(2 * DEFAULT_MODEL.switch_cost)
        with pytest.raises(ValueError):
            DEFAULT_MODEL.scaled(-1.0)
