"""Tests for the cost model and the Firecracker microVM substrate."""

import pytest

from repro.cost.cost_model import CostModel
from repro.cost.pricing import AWS_LAMBDA_X86_PRICING, LambdaPriceTable, price_per_ms
from repro.firecracker.fleet import FirecrackerFleet
from repro.firecracker.microvm import MicroVMSpec, ThreadRole
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate
from tests.conftest import make_task, make_tasks


def finished_task(task_id=0, execution=1.0, memory_mb=1024):
    task = make_task(task_id=task_id, arrival=0.0, service=execution, memory_mb=memory_mb)
    task.mark_running(0.0, core_id=0)
    task.account_service(execution)
    task.mark_finished(execution)
    return task


class TestPricing:
    def test_price_per_ms_linear_in_memory(self):
        assert price_per_ms(2048) == pytest.approx(2 * price_per_ms(1024))

    def test_gb_second_anchor(self):
        # 1 GB for 1 second = the published GB-second price.
        assert AWS_LAMBDA_X86_PRICING.execution_cost(1.0, 1024) == pytest.approx(
            0.0000166667, rel=1e-6
        )

    def test_invocation_cost_adds_request_fee(self):
        table = LambdaPriceTable()
        execution_only = table.execution_cost(1.0, 128)
        with_fee = table.invocation_cost(1.0, 128)
        assert with_fee == pytest.approx(execution_only + 0.2e-6)

    def test_published_tiers_sorted(self):
        tiers = AWS_LAMBDA_X86_PRICING.published_tiers()
        assert [t.memory_mb for t in tiers] == sorted(t.memory_mb for t in tiers)

    def test_validation(self):
        with pytest.raises(ValueError):
            price_per_ms(0)
        with pytest.raises(ValueError):
            AWS_LAMBDA_X86_PRICING.execution_cost(-1.0, 128)
        with pytest.raises(ValueError):
            LambdaPriceTable(price_per_gb_second=0.0)


class TestCostModel:
    def test_task_cost_uses_execution_time_and_memory(self):
        model = CostModel()
        task = finished_task(execution=2.0, memory_mb=1024)
        assert model.task_cost(task) == pytest.approx(2 * 0.0000166667, rel=1e-6)
        # Billing at a different memory size scales linearly.
        assert model.task_cost(task, memory_mb=2048) == pytest.approx(
            2 * model.task_cost(task), rel=1e-6
        )

    def test_unfinished_task_rejected(self):
        with pytest.raises(ValueError):
            CostModel().task_cost(make_task())

    def test_workload_cost_breakdown(self):
        model = CostModel(include_request_fee=True)
        tasks = [finished_task(i, execution=1.0) for i in range(3)]
        breakdown = model.workload_cost(tasks)
        assert breakdown.invocations == 3
        assert breakdown.billed_seconds == pytest.approx(3.0)
        assert breakdown.request_cost == pytest.approx(3 * 0.2e-6)
        assert breakdown.total > breakdown.execution_cost

    def test_cost_by_memory_size_scales(self):
        model = CostModel()
        tasks = [finished_task(i) for i in range(2)]
        costs = model.cost_by_memory_size(tasks, [128, 256])
        assert costs[256] == pytest.approx(2 * costs[128])

    def test_cost_ratio(self):
        model = CostModel()
        cheap = [finished_task(0, execution=1.0)]
        expensive = [finished_task(1, execution=10.0)]
        assert model.cost_ratio(expensive, cheap) == pytest.approx(10.0)

    def test_bill_turnaround_option(self):
        task = make_task(arrival=0.0, service=1.0)
        task.mark_running(5.0, core_id=0)
        task.account_service(1.0)
        task.mark_finished(6.0)
        execution_billed = CostModel().billed_duration(task)
        turnaround_billed = CostModel(bill_response_time=True).billed_duration(task)
        assert execution_billed == pytest.approx(1.0)
        assert turnaround_billed == pytest.approx(6.0)


class TestMicroVM:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MicroVMSpec(boot_time=-1.0)
        with pytest.raises(ValueError):
            MicroVMSpec(guest_memory_mb=0)
        with pytest.raises(ValueError):
            MicroVMSpec(vmm_cpu_fraction=1.5)

    def test_footprint(self):
        spec = MicroVMSpec(guest_memory_mb=128, memory_overhead_mb=32)
        assert spec.footprint_mb == 160


class TestFirecrackerFleet:
    def test_capacity_matches_paper_order(self):
        fleet = FirecrackerFleet()
        assert 2500 <= fleet.capacity() <= 3500

    def test_admission_caps_at_capacity(self):
        fleet = FirecrackerFleet(host_memory_mb=10 * 160, reserved_fraction=0.0)
        invocations = make_tasks([(float(i), 0.5) for i in range(15)])
        workload = fleet.admit(invocations)
        assert workload.admission.capacity == 10
        assert workload.admission.admitted == 10
        assert workload.admission.failed == 5
        assert workload.admission.failure_ratio == pytest.approx(5 / 15)

    def test_thread_expansion(self):
        fleet = FirecrackerFleet()
        invocations = make_tasks([(0.0, 1.0), (1.0, 2.0)])
        workload = fleet.admit(invocations)
        assert len(workload.thread_tasks) == 6
        vcpu = workload.vcpu_tasks()
        assert len(vcpu) == 2
        # The VCPU thread carries boot time on top of the function service.
        assert vcpu[0].service_time == pytest.approx(1.0 + fleet.spec.boot_time)
        overhead = FirecrackerFleet.overhead_tasks(workload)
        assert all(t.metadata["role"] != ThreadRole.VCPU.value for t in overhead)
        assert FirecrackerFleet.total_overhead_cpu_seconds(workload) > 0

    def test_scheduling_thread_tasks_end_to_end(self):
        fleet = FirecrackerFleet()
        invocations = make_tasks([(0.0, 0.3), (0.1, 0.5), (0.2, 0.2)])
        workload = fleet.admit(invocations)
        result = simulate(
            FIFOScheduler(), workload.thread_tasks, config=SimulationConfig(num_cores=4)
        )
        assert result.completion_ratio == 1.0
        finished_vcpu = [t for t in workload.vcpu_tasks() if t.is_finished]
        assert len(finished_vcpu) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            FirecrackerFleet(host_memory_mb=0)
        with pytest.raises(ValueError):
            FirecrackerFleet(reserved_fraction=1.0)
