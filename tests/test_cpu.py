"""Unit tests for the processor-sharing core model."""

import pytest

from repro.simulation.context_switch import ContextSwitchModel
from repro.simulation.cpu import Core, CoreMode
from tests.conftest import make_task


def make_core(core_id=0, group="all", mode=CoreMode.FAIR_SHARE, **kwargs) -> Core:
    return Core(core_id=core_id, group=group, mode=mode, **kwargs)


class TestSingleTask:
    def test_runs_at_full_speed(self):
        core = make_core()
        task = make_task(service=2.0)
        core.add_task(task, now=0.0)
        core.sync(1.0)
        assert task.remaining == pytest.approx(1.0)
        assert core.stats.busy_time == pytest.approx(1.0)

    def test_completion_time_prediction(self):
        core = make_core()
        task = make_task(service=3.0)
        core.add_task(task, now=0.0)
        assert core.time_to_next_completion() == pytest.approx(3.0)

    def test_finish_ready_tasks(self):
        core = make_core()
        task = make_task(service=1.0)
        core.add_task(task, now=0.0)
        finished = core.finish_ready_tasks(now=1.0)
        assert finished == [task]
        assert task.is_finished
        assert task.completion_time == pytest.approx(1.0)
        assert core.is_idle

    def test_no_context_switches_alone(self):
        core = make_core()
        task = make_task(service=5.0)
        core.add_task(task, 0.0)
        core.sync(5.0)
        assert core.stats.estimated_context_switches == 0.0


class TestFairSharing:
    def test_two_tasks_share_equally(self):
        core = make_core(context_switch=ContextSwitchModel(switch_cost=0.0))
        a = make_task(task_id=1, service=1.0)
        b = make_task(task_id=2, service=1.0)
        core.add_task(a, 0.0)
        core.add_task(b, 0.0)
        core.sync(1.0)
        assert a.remaining == pytest.approx(0.5)
        assert b.remaining == pytest.approx(0.5)

    def test_context_switch_overhead_slows_progress(self):
        lossless = make_core(context_switch=ContextSwitchModel(switch_cost=0.0))
        lossy = make_core(core_id=1, context_switch=ContextSwitchModel(switch_cost=0.002))
        for core in (lossless, lossy):
            core.add_task(make_task(task_id=10 + core.core_id, service=5.0), 0.0)
            core.add_task(make_task(task_id=20 + core.core_id, service=5.0), 0.0)
            core.sync(2.0)
        lossless_remaining = min(t.remaining for t in lossless.tasks)
        lossy_remaining = min(t.remaining for t in lossy.tasks)
        assert lossy_remaining > lossless_remaining

    def test_estimated_switches_accumulate(self):
        core = make_core()
        core.add_task(make_task(task_id=1, service=10.0), 0.0)
        core.add_task(make_task(task_id=2, service=10.0), 0.0)
        core.sync(1.0)
        assert core.stats.estimated_context_switches > 0

    def test_completion_prediction_accounts_for_sharing(self):
        core = make_core(context_switch=ContextSwitchModel(switch_cost=0.0))
        core.add_task(make_task(task_id=1, service=1.0), 0.0)
        core.add_task(make_task(task_id=2, service=2.0), 0.0)
        # Earliest completion: the 1 s task at half speed -> 2 s from now.
        assert core.time_to_next_completion() == pytest.approx(2.0)


class TestTaskMoves:
    def test_remove_preempted_counts(self):
        core = make_core()
        task = make_task(service=2.0)
        core.add_task(task, 0.0)
        removed = core.remove_task(task, 1.0, preempted=True)
        assert removed is task
        assert task.preemptions == 1
        assert core.stats.explicit_preemptions == 1
        assert core.is_idle

    def test_remove_unknown_task_rejected(self):
        core = make_core()
        with pytest.raises(RuntimeError):
            core.remove_task(make_task(), 0.0)

    def test_duplicate_add_rejected(self):
        core = make_core()
        task = make_task()
        core.add_task(task, 0.0)
        with pytest.raises(RuntimeError):
            core.add_task(task, 0.0)

    def test_dedicated_mode_rejects_second_task(self):
        core = make_core(mode=CoreMode.DEDICATED)
        core.add_task(make_task(task_id=1), 0.0)
        with pytest.raises(RuntimeError):
            core.add_task(make_task(task_id=2), 0.0)

    def test_locked_core_rejects_tasks(self):
        core = make_core()
        core.lock()
        with pytest.raises(RuntimeError):
            core.add_task(make_task(), 0.0)
        core.unlock()
        core.add_task(make_task(), 0.0)

    def test_migration_cost_charged_on_cross_core_move(self):
        source = make_core(core_id=0, migration_cost=0.01)
        target = make_core(core_id=1, migration_cost=0.01)
        task = make_task(service=1.0)
        source.add_task(task, 0.0)
        source.remove_task(task, 0.5, preempted=True)
        remaining_before = task.remaining
        target.add_task(task, 0.5)
        assert task.remaining == pytest.approx(remaining_before + 0.01)
        assert task.migrations == 1

    def test_drain_returns_all_tasks_preempted(self):
        core = make_core()
        tasks = [make_task(task_id=i, service=1.0) for i in range(3)]
        for task in tasks:
            core.add_task(task, 0.0)
        drained = core.drain(0.5)
        assert sorted(t.task_id for t in drained) == [0, 1, 2]
        assert core.is_idle
        assert all(t.preemptions == 1 for t in drained)

    def test_sync_backwards_rejected(self):
        core = make_core()
        core.sync(1.0)
        with pytest.raises(ValueError):
            core.sync(0.5)

    def test_change_group(self):
        core = make_core(group="fifo")
        core.change_group("cfs", mode=CoreMode.FAIR_SHARE)
        assert core.group == "cfs"


class TestUtilization:
    def test_busy_fraction(self):
        core = make_core()
        task = make_task(service=0.5)
        core.add_task(task, 0.0)
        core.finish_ready_tasks(0.5)
        core.sync(1.0)
        assert core.utilization_since(0.0, 1.0) == pytest.approx(0.5)

    def test_utilization_window_validation(self):
        core = make_core()
        with pytest.raises(ValueError):
            core.utilization_since(0.0, 0.0)
