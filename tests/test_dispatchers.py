"""Dispatch policies: selection logic, determinism, locality."""

import pytest

from repro.simulation.task import Task
from repro.cluster.dispatchers import (
    ConsistentHashDispatcher,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PowerOfTwoDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    function_key,
)


def make_task(task_id: int = 0) -> Task:
    return Task(task_id=task_id, arrival_time=0.0, service_time=1.0)


class StubNode:
    """Minimal stand-in exposing the load surface dispatchers read."""

    def __init__(self, node_id, inflight=0, busy_cores=0, capacity=1.0):
        self.node_id = node_id
        self.inflight = inflight
        self.capacity = capacity
        self._busy_cores = busy_cores

    def busy_core_count(self):
        return self._busy_cores


def stub_fleet(*loads):
    return [StubNode(i, inflight=load, busy_cores=load) for i, load in enumerate(loads)]


class TestFunctionKey:
    def test_prefers_metadata_function_id(self):
        task = make_task()
        task.metadata["function_id"] = "fib(30)/128mb"
        assert function_key(task) == "fib(30)/128mb"

    def test_falls_back_to_name_then_id(self):
        named = make_task(task_id=3)
        named.name = "fib(30)"
        assert function_key(named) == "fib(30)"
        anonymous = make_task(task_id=3)
        assert function_key(anonymous) == "task-3"

    def test_empty_function_id_does_not_collide(self):
        """Regression: ``function_id=""`` used to map every task to one key."""
        first, second = make_task(task_id=1), make_task(task_id=2)
        first.metadata["function_id"] = ""
        second.metadata["function_id"] = ""
        assert function_key(first) != function_key(second)
        assert function_key(first) == "task-1"

    def test_empty_name_falls_through_to_task_id(self):
        task = make_task(task_id=9)
        task.name = ""
        assert function_key(task) == "task-9"

    def test_named_fallback_applies_with_empty_function_id(self):
        task = make_task(task_id=4)
        task.metadata["function_id"] = ""
        task.name = "fib(31)"
        assert function_key(task) == "fib(31)"

    def test_key_is_stable_across_calls(self):
        task = make_task(task_id=5)
        task.metadata["function_id"] = "fib(33)/256mb"
        assert function_key(task) == function_key(task)

    def test_anonymous_tasks_spread_over_the_ring(self):
        """With the fix, anonymous tasks route by task id, not one shared key."""
        dispatcher = ConsistentHashDispatcher()
        nodes = stub_fleet(0, 0, 0, 0)
        picks = set()
        for task_id in range(64):
            task = make_task(task_id=task_id)
            task.metadata["function_id"] = ""
            picks.add(dispatcher.select_node(task, nodes).node_id)
        assert len(picks) > 1


class TestRoundRobin:
    def test_cycles_through_nodes(self):
        dispatcher = RoundRobinDispatcher()
        nodes = stub_fleet(0, 0, 0)
        picks = [dispatcher.select_node(make_task(), nodes).node_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_cursor_survives_node_churn(self):
        """Regression: the raw index cursor skewed whenever the active set
        changed mid-sweep — adding or draining a node silently re-targeted
        a different node.  The cycle must continue from the last *id*."""
        dispatcher = RoundRobinDispatcher()
        fleet = {i: StubNode(i) for i in range(3)}
        nodes = [fleet[0], fleet[1], fleet[2]]

        def pick():
            return dispatcher.select_node(make_task(), nodes).node_id

        assert [pick(), pick()] == [0, 1]
        # Node 1 drains right after being dispatched to: the sweep resumes
        # at node 2 (the raw index would have re-targeted it anyway here,
        # but the cursor must not point at the removed node).
        nodes.remove(fleet[1])
        assert pick() == 2
        # A new node (ids are never reused: always the highest) joins the
        # *end* of the cycle; after wrapping we sweep 0 -> 2 -> 3.
        fleet[3] = StubNode(3)
        nodes.append(fleet[3])
        assert [pick(), pick(), pick()] == [3, 0, 2]

    def test_cursor_wraps_when_last_dispatched_node_drains(self):
        dispatcher = RoundRobinDispatcher()
        fleet = {i: StubNode(i) for i in range(3)}
        nodes = [fleet[0], fleet[1], fleet[2]]
        for _ in range(3):  # cursor now on node 2
            dispatcher.select_node(make_task(), nodes)
        nodes.remove(fleet[2])
        # No id beyond 2 remains: wrap to the lowest id, not an IndexError.
        assert dispatcher.select_node(make_task(), nodes).node_id == 0

    def test_drain_before_cursor_does_not_skip_nodes(self):
        """The raw-index bug: removing node 0 after dispatching to it made
        index 1 point at node 2, silently skipping node 1."""
        dispatcher = RoundRobinDispatcher()
        fleet = {i: StubNode(i) for i in range(3)}
        nodes = [fleet[0], fleet[1], fleet[2]]
        assert dispatcher.select_node(make_task(), nodes).node_id == 0
        nodes.remove(fleet[0])
        assert dispatcher.select_node(make_task(), nodes).node_id == 1


class TestRandom:
    def test_seeded_and_reproducible(self):
        nodes = stub_fleet(0, 0, 0, 0)
        first = [
            RandomDispatcher(seed=5).select_node(make_task(), nodes).node_id
            for _ in range(1)
        ]
        second = [
            RandomDispatcher(seed=5).select_node(make_task(), nodes).node_id
            for _ in range(1)
        ]
        assert first == second

    def test_covers_every_node_eventually(self):
        dispatcher = RandomDispatcher(seed=5)
        nodes = stub_fleet(0, 0, 0, 0)
        picks = {dispatcher.select_node(make_task(), nodes).node_id for _ in range(100)}
        assert picks == {0, 1, 2, 3}


class TestLoadAware:
    def test_least_loaded_picks_fewest_busy_cores(self):
        dispatcher = LeastLoadedDispatcher()
        nodes = stub_fleet(4, 1, 3)
        assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_jsq_picks_fewest_inflight(self):
        dispatcher = JoinShortestQueueDispatcher()
        nodes = stub_fleet(5, 2, 9)
        assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_ties_break_by_node_id(self):
        nodes = stub_fleet(2, 2, 2)
        assert JoinShortestQueueDispatcher().select_node(make_task(), nodes).node_id == 0
        assert LeastLoadedDispatcher().select_node(make_task(), nodes).node_id == 0

    def test_jsq_counts_ingress_pending_work(self):
        """Work on the wire toward a node is still that node's load."""
        nodes = stub_fleet(1, 1)
        nodes[0].ingress = 0
        nodes[1].ingress = 3  # 3 more tasks already in flight to node 1
        assert JoinShortestQueueDispatcher().select_node(make_task(), nodes).node_id == 0

    def test_probe_flags_mark_the_jsq_family(self):
        assert JoinShortestQueueDispatcher.probes_load
        assert LeastLoadedDispatcher.probes_load
        assert PowerOfTwoDispatcher.probes_load
        assert not RoundRobinDispatcher.probes_load
        assert not RandomDispatcher.probes_load
        assert not ConsistentHashDispatcher.probes_load


class TestCapacityNormalization:
    """Load-aware policies must weigh queue depth by node capacity."""

    def big_little(self, big_load, little_load):
        return [
            StubNode(0, inflight=big_load, busy_cores=big_load, capacity=24.0),
            StubNode(1, inflight=little_load, busy_cores=little_load, capacity=8.0),
        ]

    def test_normalized_jsq_prefers_underused_big_node(self):
        # 6/24 = 0.25 on the big node vs 4/8 = 0.5 on the little one.
        nodes = self.big_little(big_load=6, little_load=4)
        assert JoinShortestQueueDispatcher().select_node(make_task(), nodes).node_id == 0

    def test_unnormalized_jsq_is_fooled_by_raw_counts(self):
        nodes = self.big_little(big_load=6, little_load=4)
        dispatcher = JoinShortestQueueDispatcher(normalized=False)
        assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_normalized_least_loaded_prefers_underused_big_node(self):
        nodes = self.big_little(big_load=6, little_load=4)
        assert LeastLoadedDispatcher().select_node(make_task(), nodes).node_id == 0

    def test_unnormalized_least_loaded_counts_raw_busy_cores(self):
        nodes = self.big_little(big_load=6, little_load=4)
        dispatcher = LeastLoadedDispatcher(normalized=False)
        assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_power_of_two_normalizes_sampled_pair(self):
        # Two nodes: the sample is always both, so the pick is deterministic.
        nodes = self.big_little(big_load=6, little_load=4)
        assert PowerOfTwoDispatcher(seed=1).select_node(make_task(), nodes).node_id == 0
        fooled = PowerOfTwoDispatcher(seed=1, normalized=False)
        assert fooled.select_node(make_task(), nodes).node_id == 1

    def test_nodes_without_capacity_degrade_to_raw_counts(self):
        """Stubs lacking ``capacity`` behave as capacity-1 nodes (old API)."""

        class BareNode:
            def __init__(self, node_id, inflight):
                self.node_id = node_id
                self.inflight = inflight

        nodes = [BareNode(0, 3), BareNode(1, 1)]
        assert JoinShortestQueueDispatcher().select_node(make_task(), nodes).node_id == 1


class TestPowerOfTwo:
    def test_picks_less_loaded_of_sample(self):
        # With two nodes the sample is always both, so the pick is the min.
        dispatcher = PowerOfTwoDispatcher(seed=1)
        nodes = stub_fleet(7, 3)
        for _ in range(10):
            assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_single_node_short_circuit(self):
        dispatcher = PowerOfTwoDispatcher(seed=1)
        nodes = stub_fleet(9)
        assert dispatcher.select_node(make_task(), nodes).node_id == 0

    def test_choices_validated(self):
        with pytest.raises(ValueError):
            PowerOfTwoDispatcher(choices=1)


class TestConsistentHash:
    def test_same_function_same_node(self):
        dispatcher = ConsistentHashDispatcher()
        nodes = stub_fleet(0, 0, 0, 0)
        task_a = make_task(task_id=1)
        task_a.metadata["function_id"] = "fib(32)/128mb"
        task_b = make_task(task_id=2)
        task_b.metadata["function_id"] = "fib(32)/128mb"
        assert (
            dispatcher.select_node(task_a, nodes).node_id
            == dispatcher.select_node(task_b, nodes).node_id
        )

    def test_routing_is_stable_across_dispatcher_instances(self):
        nodes = stub_fleet(0, 0, 0, 0)
        task = make_task()
        task.metadata["function_id"] = "fib(35)/256mb"
        assert (
            ConsistentHashDispatcher().select_node(task, nodes).node_id
            == ConsistentHashDispatcher().select_node(task, nodes).node_id
        )

    def test_node_removal_moves_few_keys(self):
        """Consistent hashing: dropping one of 8 nodes remaps only its arc."""
        dispatcher = ConsistentHashDispatcher(replicas=64)
        nodes = stub_fleet(*([0] * 8))
        keys = [f"function-{i}" for i in range(400)]

        def route(fleet):
            mapping = {}
            for key in keys:
                task = make_task()
                task.metadata["function_id"] = key
                mapping[key] = dispatcher.select_node(task, fleet).node_id
            return mapping

        before = route(nodes)
        after = route(nodes[:-1])  # node 7 leaves
        moved = sum(
            1 for key in keys if before[key] != after[key] and before[key] != 7
        )
        # Keys on surviving nodes should essentially all stay put.
        assert moved <= len(keys) * 0.05

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            ConsistentHashDispatcher(replicas=0)

    def test_drain_then_replacement_rebuilds_the_ring(self):
        """A node that drains and is replaced by a fresh node (re-using its
        freed capacity under a new id) must be routed from a rebuilt ring —
        never served from the stale one."""
        dispatcher = ConsistentHashDispatcher()
        fleet = {i: StubNode(i) for i in range(4)}
        nodes = [fleet[i] for i in range(4)]
        keys = [f"function-{i}" for i in range(200)]

        def route(active):
            mapping = {}
            for key in keys:
                task = make_task()
                task.metadata["function_id"] = key
                mapping[key] = dispatcher.select_node(task, active).node_id
            return mapping

        before = route(nodes)
        # Node 1 drains, a replacement joins under the next fresh id.
        fleet[4] = StubNode(4)
        survivors = [fleet[0], fleet[2], fleet[3], fleet[4]]
        after = route(survivors)
        assert set(after.values()) <= {0, 2, 3, 4}  # nothing routed to node 1
        # Consistent hashing: keys on surviving nodes essentially stay put.
        moved = sum(
            1 for key in keys if before[key] != 1 and after[key] != before[key]
        )
        assert moved <= len(keys) * 0.1

    def test_picks_come_from_the_live_sequence(self):
        """Same ids, different node objects (a fresh fleet snapshot): the
        pick must be the object from the *caller's* sequence, not a cached
        node from the ring build."""
        dispatcher = ConsistentHashDispatcher()
        task = make_task()
        task.metadata["function_id"] = "fib(30)"
        first_fleet = stub_fleet(0, 0, 0)
        pick = dispatcher.select_node(task, first_fleet)
        second_fleet = stub_fleet(0, 0, 0)  # same ids, new objects
        repick = dispatcher.select_node(task, second_fleet)
        assert repick.node_id == pick.node_id
        assert repick is second_fleet[repick.node_id]
        assert repick is not pick

    def test_stale_ring_raises_instead_of_misrouting(self):
        """White-box: the ring-is-stale guard must fire loudly if internal
        state ever disagrees with the fleet (both guard arms)."""
        dispatcher = ConsistentHashDispatcher()
        nodes = stub_fleet(0, 0, 0)
        dispatcher.select_node(make_task(), nodes)  # builds the ring
        dispatcher._positions = {}  # target id no longer mapped
        with pytest.raises(RuntimeError, match="ring is stale"):
            dispatcher.select_node(make_task(), nodes)
        dispatcher._rebuild(nodes)
        # Position maps to a slot holding a different node id.
        dispatcher._positions = {node.node_id: 0 for node in nodes}
        with pytest.raises(RuntimeError, match="ring is stale"):
            # Route enough distinct keys that some target a non-zero slot.
            for i in range(16):
                probe = make_task(task_id=i)
                probe.metadata["function_id"] = f"function-{i}"
                dispatcher.select_node(probe, nodes)
