"""Dispatch policies: selection logic, determinism, locality."""

import pytest

from repro.simulation.task import Task
from repro.cluster.dispatchers import (
    ConsistentHashDispatcher,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PowerOfTwoDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    function_key,
)


def make_task(task_id: int = 0) -> Task:
    return Task(task_id=task_id, arrival_time=0.0, service_time=1.0)


class StubNode:
    """Minimal stand-in exposing the load surface dispatchers read."""

    def __init__(self, node_id, inflight=0, busy_cores=0, capacity=1.0):
        self.node_id = node_id
        self.inflight = inflight
        self.capacity = capacity
        self._busy_cores = busy_cores

    def busy_core_count(self):
        return self._busy_cores


def stub_fleet(*loads):
    return [StubNode(i, inflight=load, busy_cores=load) for i, load in enumerate(loads)]


class TestFunctionKey:
    def test_prefers_metadata_function_id(self):
        task = make_task()
        task.metadata["function_id"] = "fib(30)/128mb"
        assert function_key(task) == "fib(30)/128mb"

    def test_falls_back_to_name_then_id(self):
        named = make_task(task_id=3)
        named.name = "fib(30)"
        assert function_key(named) == "fib(30)"
        anonymous = make_task(task_id=3)
        assert function_key(anonymous) == "task-3"

    def test_empty_function_id_does_not_collide(self):
        """Regression: ``function_id=""`` used to map every task to one key."""
        first, second = make_task(task_id=1), make_task(task_id=2)
        first.metadata["function_id"] = ""
        second.metadata["function_id"] = ""
        assert function_key(first) != function_key(second)
        assert function_key(first) == "task-1"

    def test_empty_name_falls_through_to_task_id(self):
        task = make_task(task_id=9)
        task.name = ""
        assert function_key(task) == "task-9"

    def test_named_fallback_applies_with_empty_function_id(self):
        task = make_task(task_id=4)
        task.metadata["function_id"] = ""
        task.name = "fib(31)"
        assert function_key(task) == "fib(31)"

    def test_key_is_stable_across_calls(self):
        task = make_task(task_id=5)
        task.metadata["function_id"] = "fib(33)/256mb"
        assert function_key(task) == function_key(task)

    def test_anonymous_tasks_spread_over_the_ring(self):
        """With the fix, anonymous tasks route by task id, not one shared key."""
        dispatcher = ConsistentHashDispatcher()
        nodes = stub_fleet(0, 0, 0, 0)
        picks = set()
        for task_id in range(64):
            task = make_task(task_id=task_id)
            task.metadata["function_id"] = ""
            picks.add(dispatcher.select_node(task, nodes).node_id)
        assert len(picks) > 1


class TestRoundRobin:
    def test_cycles_through_nodes(self):
        dispatcher = RoundRobinDispatcher()
        nodes = stub_fleet(0, 0, 0)
        picks = [dispatcher.select_node(make_task(), nodes).node_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]


class TestRandom:
    def test_seeded_and_reproducible(self):
        nodes = stub_fleet(0, 0, 0, 0)
        first = [
            RandomDispatcher(seed=5).select_node(make_task(), nodes).node_id
            for _ in range(1)
        ]
        second = [
            RandomDispatcher(seed=5).select_node(make_task(), nodes).node_id
            for _ in range(1)
        ]
        assert first == second

    def test_covers_every_node_eventually(self):
        dispatcher = RandomDispatcher(seed=5)
        nodes = stub_fleet(0, 0, 0, 0)
        picks = {dispatcher.select_node(make_task(), nodes).node_id for _ in range(100)}
        assert picks == {0, 1, 2, 3}


class TestLoadAware:
    def test_least_loaded_picks_fewest_busy_cores(self):
        dispatcher = LeastLoadedDispatcher()
        nodes = stub_fleet(4, 1, 3)
        assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_jsq_picks_fewest_inflight(self):
        dispatcher = JoinShortestQueueDispatcher()
        nodes = stub_fleet(5, 2, 9)
        assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_ties_break_by_node_id(self):
        nodes = stub_fleet(2, 2, 2)
        assert JoinShortestQueueDispatcher().select_node(make_task(), nodes).node_id == 0
        assert LeastLoadedDispatcher().select_node(make_task(), nodes).node_id == 0


class TestCapacityNormalization:
    """Load-aware policies must weigh queue depth by node capacity."""

    def big_little(self, big_load, little_load):
        return [
            StubNode(0, inflight=big_load, busy_cores=big_load, capacity=24.0),
            StubNode(1, inflight=little_load, busy_cores=little_load, capacity=8.0),
        ]

    def test_normalized_jsq_prefers_underused_big_node(self):
        # 6/24 = 0.25 on the big node vs 4/8 = 0.5 on the little one.
        nodes = self.big_little(big_load=6, little_load=4)
        assert JoinShortestQueueDispatcher().select_node(make_task(), nodes).node_id == 0

    def test_unnormalized_jsq_is_fooled_by_raw_counts(self):
        nodes = self.big_little(big_load=6, little_load=4)
        dispatcher = JoinShortestQueueDispatcher(normalized=False)
        assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_normalized_least_loaded_prefers_underused_big_node(self):
        nodes = self.big_little(big_load=6, little_load=4)
        assert LeastLoadedDispatcher().select_node(make_task(), nodes).node_id == 0

    def test_unnormalized_least_loaded_counts_raw_busy_cores(self):
        nodes = self.big_little(big_load=6, little_load=4)
        dispatcher = LeastLoadedDispatcher(normalized=False)
        assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_power_of_two_normalizes_sampled_pair(self):
        # Two nodes: the sample is always both, so the pick is deterministic.
        nodes = self.big_little(big_load=6, little_load=4)
        assert PowerOfTwoDispatcher(seed=1).select_node(make_task(), nodes).node_id == 0
        fooled = PowerOfTwoDispatcher(seed=1, normalized=False)
        assert fooled.select_node(make_task(), nodes).node_id == 1

    def test_nodes_without_capacity_degrade_to_raw_counts(self):
        """Stubs lacking ``capacity`` behave as capacity-1 nodes (old API)."""

        class BareNode:
            def __init__(self, node_id, inflight):
                self.node_id = node_id
                self.inflight = inflight

        nodes = [BareNode(0, 3), BareNode(1, 1)]
        assert JoinShortestQueueDispatcher().select_node(make_task(), nodes).node_id == 1


class TestPowerOfTwo:
    def test_picks_less_loaded_of_sample(self):
        # With two nodes the sample is always both, so the pick is the min.
        dispatcher = PowerOfTwoDispatcher(seed=1)
        nodes = stub_fleet(7, 3)
        for _ in range(10):
            assert dispatcher.select_node(make_task(), nodes).node_id == 1

    def test_single_node_short_circuit(self):
        dispatcher = PowerOfTwoDispatcher(seed=1)
        nodes = stub_fleet(9)
        assert dispatcher.select_node(make_task(), nodes).node_id == 0

    def test_choices_validated(self):
        with pytest.raises(ValueError):
            PowerOfTwoDispatcher(choices=1)


class TestConsistentHash:
    def test_same_function_same_node(self):
        dispatcher = ConsistentHashDispatcher()
        nodes = stub_fleet(0, 0, 0, 0)
        task_a = make_task(task_id=1)
        task_a.metadata["function_id"] = "fib(32)/128mb"
        task_b = make_task(task_id=2)
        task_b.metadata["function_id"] = "fib(32)/128mb"
        assert (
            dispatcher.select_node(task_a, nodes).node_id
            == dispatcher.select_node(task_b, nodes).node_id
        )

    def test_routing_is_stable_across_dispatcher_instances(self):
        nodes = stub_fleet(0, 0, 0, 0)
        task = make_task()
        task.metadata["function_id"] = "fib(35)/256mb"
        assert (
            ConsistentHashDispatcher().select_node(task, nodes).node_id
            == ConsistentHashDispatcher().select_node(task, nodes).node_id
        )

    def test_node_removal_moves_few_keys(self):
        """Consistent hashing: dropping one of 8 nodes remaps only its arc."""
        dispatcher = ConsistentHashDispatcher(replicas=64)
        nodes = stub_fleet(*([0] * 8))
        keys = [f"function-{i}" for i in range(400)]

        def route(fleet):
            mapping = {}
            for key in keys:
                task = make_task()
                task.metadata["function_id"] = key
                mapping[key] = dispatcher.select_node(task, fleet).node_id
            return mapping

        before = route(nodes)
        after = route(nodes[:-1])  # node 7 leaves
        moved = sum(
            1 for key in keys if before[key] != after[key] and before[key] != 7
        )
        # Keys on surviving nodes should essentially all stay put.
        assert moved <= len(keys) * 0.05

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            ConsistentHashDispatcher(replicas=0)
