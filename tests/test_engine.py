"""Unit and integration tests for the discrete-event engine."""

import pytest

from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationError, Simulator, simulate
from repro.simulation.machine import Machine
from tests.conftest import make_task, make_tasks


def build_sim(num_cores=2, scheduler=None, **config_kwargs):
    config = SimulationConfig(num_cores=num_cores, **config_kwargs)
    scheduler = scheduler or FIFOScheduler()
    machine = Machine(config)
    return Simulator(machine, scheduler, config=config)


class TestBasicRuns:
    def test_single_task_runs_to_completion(self):
        sim = build_sim(num_cores=1)
        task = make_task(arrival=0.0, service=2.0)
        sim.submit([task])
        result = sim.run()
        assert task.is_finished
        assert task.completion_time == pytest.approx(2.0)
        assert result.simulated_time == pytest.approx(2.0)
        assert len(result.finished_tasks) == 1

    def test_queueing_on_single_core(self):
        sim = build_sim(num_cores=1)
        tasks = make_tasks([(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)])
        sim.submit(tasks)
        sim.run()
        completions = sorted(t.completion_time for t in tasks)
        assert completions == pytest.approx([1.0, 2.0, 3.0])
        responses = sorted(t.response_time for t in tasks)
        assert responses == pytest.approx([0.0, 1.0, 2.0])

    def test_parallel_cores_run_concurrently(self):
        sim = build_sim(num_cores=2)
        tasks = make_tasks([(0.0, 1.0), (0.0, 1.0)])
        sim.submit(tasks)
        sim.run()
        assert all(t.completion_time == pytest.approx(1.0) for t in tasks)

    def test_arrival_times_respected(self):
        sim = build_sim(num_cores=1)
        tasks = make_tasks([(0.0, 0.5), (10.0, 0.5)])
        sim.submit(tasks)
        result = sim.run()
        assert tasks[1].first_run_time == pytest.approx(10.0)
        assert result.simulated_time == pytest.approx(10.5)

    def test_cannot_submit_while_running(self):
        sim = build_sim(num_cores=1)

        def submit_late():
            sim.submit([make_task(task_id=99, arrival=0.5, service=0.1)])

        sim.submit([make_task(service=1.0)])
        sim.schedule_timer(0.2, submit_late)
        with pytest.raises(SimulationError):
            sim.run()


class TestTimers:
    def test_timer_fires_at_requested_time(self):
        sim = build_sim(num_cores=1)
        fired = []
        sim.submit([make_task(service=1.0)])
        sim.schedule_timer(0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(0.5)]

    def test_timer_in_past_rejected(self):
        sim = build_sim()
        with pytest.raises(ValueError):
            sim.schedule_timer(-1.0, lambda: None)

    def test_record_series(self):
        sim = build_sim(num_cores=1)
        sim.submit([make_task(service=1.0)])
        sim.schedule_timer(0.25, lambda: sim.record_series("queue", 3.0))
        result = sim.run()
        points = result.series_values("queue")
        assert len(points) == 1
        assert points[0].value == 3.0


class TestLimitsAndSampling:
    def test_max_simulated_time_truncates(self):
        sim = build_sim(num_cores=1, max_simulated_time=1.0)
        tasks = make_tasks([(0.0, 0.4), (0.0, 5.0)])
        sim.submit(tasks)
        result = sim.run()
        assert result.simulated_time <= 1.0
        assert len(result.finished_tasks) == 1
        assert len(result.unfinished_tasks) == 1

    def test_until_argument(self):
        sim = build_sim(num_cores=1)
        sim.submit(make_tasks([(0.0, 10.0)]))
        result = sim.run(until=2.0)
        assert result.simulated_time <= 2.0
        assert result.completion_ratio == 0.0

    def test_utilization_samples_collected(self):
        sim = build_sim(num_cores=1, utilization_window=0.5)
        sim.submit(make_tasks([(0.0, 2.0)]))
        result = sim.run()
        assert len(result.utilization_samples) >= 3
        # The core is fully busy for the whole run.
        assert all(s.per_core[0] > 0.99 for s in result.utilization_samples[:-1])

    def test_utilization_sampling_can_be_disabled(self):
        sim = build_sim(num_cores=1, record_utilization=False)
        sim.submit(make_tasks([(0.0, 1.0)]))
        result = sim.run()
        assert result.utilization_samples == []


class TestSimulateHelper:
    def test_simulate_builds_machine_from_scheduler_preferences(self):
        result = simulate(
            FIFOScheduler(),
            make_tasks([(0.0, 0.5), (0.1, 0.5)]),
            config=SimulationConfig(num_cores=3),
        )
        assert result.config.num_cores == 3
        assert result.completion_ratio == 1.0
        assert result.scheduler_name == "fifo"

    def test_events_processed_counted(self):
        result = simulate(
            FIFOScheduler(),
            make_tasks([(0.0, 0.5)]),
            config=SimulationConfig(num_cores=1),
        )
        assert result.events_processed >= 2
