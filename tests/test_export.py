"""Tests for CSV export of simulation results."""

import csv

import pytest

from repro.analysis.export import (
    export_comparison_table,
    export_metric_cdf,
    export_result_bundle,
    export_series,
    export_task_metrics,
    write_csv,
)
from repro.analysis.report import ComparisonTable, csv_cell, format_float
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate
from tests.conftest import make_tasks


@pytest.fixture(scope="module")
def small_result():
    return simulate(
        FIFOScheduler(),
        make_tasks([(0.0, 0.5), (0.1, 1.0), (0.2, 0.3)]),
        config=SimulationConfig(num_cores=2),
    )


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestTaskExport:
    def test_one_row_per_finished_task(self, small_result, tmp_path):
        path = export_task_metrics(small_result, tmp_path / "tasks.csv")
        rows = read_csv(path)
        assert rows[0][0] == "task_id"
        assert len(rows) == 1 + len(small_result.finished_tasks)

    def test_columns_parse_as_numbers(self, small_result, tmp_path):
        path = export_task_metrics(small_result, tmp_path / "tasks.csv")
        rows = read_csv(path)
        header, first = rows[0], rows[1]
        record = dict(zip(header, first))
        assert float(record["execution_time"]) > 0
        assert float(record["turnaround_time"]) >= float(record["execution_time"])


class TestCDFExport:
    def test_curve_is_monotone(self, small_result, tmp_path):
        path = export_metric_cdf(small_result, "execution", tmp_path / "cdf.csv", points=50)
        rows = read_csv(path)[1:]
        fractions = [float(r[1]) for r in rows]
        assert len(fractions) == 50
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_unknown_metric_rejected(self, small_result, tmp_path):
        with pytest.raises(ValueError):
            export_metric_cdf(small_result, "latency", tmp_path / "cdf.csv")


class TestSeriesExport:
    def test_utilization_series_included(self, small_result, tmp_path):
        path = export_series(small_result, tmp_path / "series.csv")
        rows = read_csv(path)[1:]
        series_names = {row[0] for row in rows}
        assert any(name.startswith("utilization:") for name in series_names)


class TestCSVHelper:
    """The one row-formatting helper every CSV writer shares."""

    def test_csv_cell_formatting(self):
        assert csv_cell(1.5) == "1.500000"
        assert csv_cell(1.23456789) == "1.234568"
        assert csv_cell(None) == ""
        assert csv_cell(7) == "7"
        assert csv_cell("fifo") == "fifo"
        assert csv_cell(True) == "True"
        assert format_float(0.5, precision=2) == "0.50"

    def test_write_csv_round_trip(self, tmp_path):
        path = write_csv(
            tmp_path / "nested" / "out.csv",
            ["a", "b", "c"],
            [[1, 0.25, None], ["x", 2.0, 3]],
        )
        rows = read_csv(path)
        assert rows == [
            ["a", "b", "c"],
            ["1", "0.250000", ""],
            ["x", "2.000000", "3"],
        ]

    def test_experiment_output_tables_share_the_helper(self, tmp_path):
        """ExperimentOutput.write_csv produces export_comparison_table bytes."""
        from repro.experiments.common import ExperimentOutput

        table = ComparisonTable(columns=("cost",))
        table.add_row("fifo", {"cost": 0.125})
        output = ExperimentOutput(
            experiment_id="figX",
            title="t",
            description="d",
            text="",
            tables={"metrics": table},
        )
        written = output.write_csv(tmp_path)
        reference = export_comparison_table(table, tmp_path / "ref.csv")
        assert written["metrics"].name == "figX_metrics.csv"
        assert written["metrics"].read_bytes() == reference.read_bytes()
        assert read_csv(written["metrics"])[1] == ["fifo", "0.125000"]


class TestTableAndBundle:
    def test_comparison_table_export(self, tmp_path):
        table = ComparisonTable(columns=("cost",))
        table.add_row("fifo", {"cost": 1.0})
        table.add_row("cfs", {"cost": 10.0})
        path = export_comparison_table(table, tmp_path / "table.csv")
        rows = read_csv(path)
        assert rows[0] == ["scheduler", "cost"]
        assert rows[1][0] == "fifo"

    def test_bundle_writes_all_files(self, small_result, tmp_path):
        written = export_result_bundle(small_result, tmp_path, prefix="demo")
        assert set(written) == {
            "tasks", "series", "cdf_execution", "cdf_response", "cdf_turnaround",
        }
        for path in written.values():
            assert path.exists()
            assert path.name.startswith("demo")
