"""Unit tests for the ghOSt-like delegation layer."""

import pytest

from repro.ghost.agent import AgentGroup, GlobalAgent, PerCpuAgent
from repro.ghost.channel import ChannelOverflowError, MessageChannel
from repro.ghost.enclave import Enclave
from repro.ghost.messages import Message, MessageType
from repro.ghost.status_word import StatusWord, TaskRunState


class RecordingPolicy:
    """Minimal policy that records which handler got which message."""

    def __init__(self):
        self.calls = []

    def handle_task_new(self, message):
        self.calls.append(("new", message.task_id))

    def handle_task_dead(self, message):
        self.calls.append(("dead", message.task_id))

    def handle_task_preempt(self, message):
        self.calls.append(("preempt", message.task_id))

    def handle_cpu_tick(self, message):
        self.calls.append(("tick", message.cpu_id))


class TestMessages:
    def test_task_message_classification(self):
        new = Message(MessageType.TASK_NEW, timestamp=0.0, task_id=1)
        tick = Message(MessageType.CPU_TICK, timestamp=0.0, cpu_id=3)
        assert new.is_task_message()
        assert not tick.is_task_message()

    def test_sequence_numbers_increase(self):
        first = Message(MessageType.TASK_NEW, timestamp=0.0, task_id=1)
        second = Message(MessageType.TASK_NEW, timestamp=0.0, task_id=2)
        assert second.seq > first.seq


class TestChannel:
    def test_fifo_delivery(self):
        channel = MessageChannel()
        for i in range(3):
            channel.post(Message(MessageType.TASK_NEW, timestamp=float(i), task_id=i))
        assert [m.task_id for m in channel.drain()] == [0, 1, 2]
        assert channel.messages_delivered == 3

    def test_capacity_overflow(self):
        channel = MessageChannel(capacity=1)
        channel.post(Message(MessageType.TASK_NEW, timestamp=0.0, task_id=0))
        with pytest.raises(ChannelOverflowError):
            channel.post(Message(MessageType.TASK_NEW, timestamp=0.0, task_id=1))

    def test_dispatch_handles_reentrant_posts(self):
        channel = MessageChannel()
        handled = []

        def handler(message):
            handled.append(message.task_id)
            if message.task_id == 0:
                channel.post(Message(MessageType.TASK_DEAD, timestamp=1.0, task_id=99))

        channel.post(Message(MessageType.TASK_NEW, timestamp=0.0, task_id=0))
        processed = channel.dispatch(handler)
        assert processed == 2
        assert handled == [0, 99]

    def test_high_watermark(self):
        channel = MessageChannel()
        channel.post(Message(MessageType.TASK_NEW, timestamp=0.0, task_id=0))
        channel.post(Message(MessageType.TASK_NEW, timestamp=0.0, task_id=1))
        channel.drain()
        assert channel.high_watermark == 2


class TestStatusWord:
    def test_runtime_accumulates_across_stints(self):
        word = StatusWord(task_id=1)
        word.mark_queued("fifo")
        word.mark_on_cpu(0, now=1.0)
        word.mark_preempted(now=3.0)
        word.mark_on_cpu(1, now=5.0)
        word.mark_dead(now=6.0)
        assert word.runtime == pytest.approx(3.0)
        assert word.dispatch_count == 2
        assert word.is_dead

    def test_current_run_length(self):
        word = StatusWord(task_id=1)
        word.mark_on_cpu(0, now=2.0)
        assert word.current_run_length(3.5) == pytest.approx(1.5)
        word.mark_preempted(3.5)
        assert word.current_run_length(10.0) == 0.0


class TestEnclave:
    def test_policy_group_assignment(self):
        enclave = Enclave(cpu_ids=range(4))
        enclave.assign_policy_group("fifo", [0, 1])
        enclave.assign_policy_group("cfs", [2, 3])
        assert enclave.group_cpus("fifo") == [0, 1]
        with pytest.raises(ValueError):
            enclave.assign_policy_group("other", [1])  # already in fifo
        with pytest.raises(ValueError):
            enclave.assign_policy_group("bad", [99])  # not in enclave

    def test_move_cpu_between_groups(self):
        enclave = Enclave(cpu_ids=range(2))
        enclave.assign_policy_group("fifo", [0])
        enclave.assign_policy_group("cfs", [1])
        enclave.move_cpu(0, "fifo", "cfs")
        assert enclave.group_cpus("cfs") == [0, 1]
        with pytest.raises(ValueError):
            enclave.move_cpu(0, "fifo", "cfs")

    def test_publish_and_register(self):
        enclave = Enclave(cpu_ids=[0])
        word = enclave.publish_task_new(7, now=0.5)
        assert isinstance(word, StatusWord)
        enclave.publish_task_dead(7, now=1.0)
        messages = enclave.channel.drain()
        assert [m.msg_type for m in messages] == [MessageType.TASK_NEW, MessageType.TASK_DEAD]
        stats = enclave.stats()
        assert stats["registered_tasks"] == 1

    def test_needs_at_least_one_cpu(self):
        with pytest.raises(ValueError):
            Enclave(cpu_ids=[])

    def test_status_word_lookup(self):
        enclave = Enclave(cpu_ids=[0])
        with pytest.raises(KeyError):
            enclave.status_word(1)


class TestAgents:
    def test_global_agent_routes_messages(self):
        enclave = Enclave(cpu_ids=[0, 1])
        policy = RecordingPolicy()
        agent = GlobalAgent(enclave, policy)
        enclave.publish_task_new(1, now=0.0)
        enclave.publish_task_preempt(1, now=1.0)
        enclave.publish_task_dead(1, now=2.0)
        enclave.publish_cpu_tick(0, now=3.0)
        processed = agent.process_pending()
        assert processed == 4
        assert policy.calls == [("new", 1), ("preempt", 1), ("dead", 1), ("tick", 0)]

    def test_per_cpu_agents_stay_passive(self):
        enclave = Enclave(cpu_ids=[0])
        policy = RecordingPolicy()
        group = AgentGroup(enclave, policy)
        enclave.publish_task_new(1, now=0.0)
        assert group.agent_for(0).process_pending() == 0
        assert group.process_pending() == 1

    def test_per_cpu_agent_requires_member_cpu(self):
        enclave = Enclave(cpu_ids=[0])
        with pytest.raises(ValueError):
            PerCpuAgent(enclave, RecordingPolicy(), cpu_id=5)
