"""Golden-equivalence suite for the virtual-time core rewrite.

Runs the three representative scenarios of :mod:`golden_scenarios` on their
fixed seeds and asserts that the lazily-materialized virtual-time accounting
reproduces the eager O(n)-sync engine's turnaround / p99 / preemption
metrics within 1e-9 (fixture captured at commit ``bf121a5``, immediately
before the rewrite), and that fixed-seed runs stay bit-identical run to run.
"""

from __future__ import annotations

import pytest

from golden_scenarios import SCENARIOS, TOLERANCE, assert_close, load_golden


@pytest.fixture(scope="module")
def golden():
    return load_golden()


@pytest.fixture(scope="module")
def observed():
    """Each scenario run twice: once to compare, once for determinism."""
    return {name: (run(), run()) for name, run in SCENARIOS.items()}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_matches_pre_refactor_engine(scenario, golden, observed):
    assert_close(scenario, golden[scenario], observed[scenario][0])


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_fixed_seed_runs_are_bit_identical(scenario, observed):
    first, second = observed[scenario]
    assert first == second, f"{scenario}: two same-seed runs diverged"


def test_tolerance_is_the_contract():
    """The ISSUE's acceptance bound: metrics equivalent within 1e-9."""
    assert TOLERANCE == 1e-9
