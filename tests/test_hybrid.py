"""Behavioural tests for the hybrid FIFO+CFS scheduler."""

import pytest

from repro.core.config import CFS_GROUP, CFSPlacement, FIFO_GROUP, HybridConfig
from repro.core.hybrid import HybridScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate
from repro.simulation.machine import Machine
from tests.conftest import make_tasks


def run_hybrid(specs, config=None, num_cores=4, **sim_kwargs):
    hconfig = config or HybridConfig(fifo_cores=num_cores // 2, cfs_cores=num_cores - num_cores // 2)
    scheduler = HybridScheduler(hconfig)
    sim_config = SimulationConfig(num_cores=num_cores, **sim_kwargs)
    result = simulate(scheduler, make_tasks(specs), config=sim_config)
    return scheduler, result


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            HybridConfig(fifo_cores=0)
        with pytest.raises(ValueError):
            HybridConfig(time_limit=0.0)
        with pytest.raises(ValueError):
            HybridConfig(time_limit_percentile=0)
        with pytest.raises(ValueError):
            HybridConfig(rightsizing_threshold=1.5)
        with pytest.raises(ValueError):
            HybridConfig(min_group_size=30)

    def test_with_helpers(self):
        config = HybridConfig()
        assert config.with_split(10, 40).fifo_cores == 10
        assert config.with_time_limit(0.5).time_limit == 0.5
        adaptive = config.with_adaptive_limit(75)
        assert adaptive.adaptive_time_limit and adaptive.time_limit_percentile == 75
        assert config.with_rightsizing().rightsizing

    def test_total_cores(self):
        assert HybridConfig(fifo_cores=10, cfs_cores=15).total_cores == 25


class TestGroupWiring:
    def test_preferred_groups_exact(self):
        scheduler = HybridScheduler(HybridConfig(fifo_cores=25, cfs_cores=25))
        assert scheduler.preferred_groups(50) == {"fifo": 25, "cfs": 25}

    def test_preferred_groups_rescaled(self):
        scheduler = HybridScheduler(HybridConfig(fifo_cores=25, cfs_cores=25))
        groups = scheduler.preferred_groups(10)
        assert groups["fifo"] + groups["cfs"] == 10
        assert groups["fifo"] == 5

    def test_attach_requires_named_groups(self):
        scheduler = HybridScheduler(HybridConfig(fifo_cores=1, cfs_cores=1))
        config = SimulationConfig(num_cores=2)
        machine = Machine(config)  # single "all" group
        with pytest.raises(ValueError):
            simulate(scheduler, make_tasks([(0.0, 1.0)]), config=config, machine=machine)


class TestShortTasks:
    def test_short_tasks_run_to_completion_on_fifo_cores(self):
        scheduler, result = run_hybrid([(0.0, 0.2), (0.0, 0.3), (0.05, 0.1)])
        assert result.completion_ratio == 1.0
        assert scheduler.tasks_preempted_to_cfs == 0
        assert scheduler.tasks_completed_in_fifo == 3
        for task in result.finished_tasks:
            assert task.execution_time == pytest.approx(task.service_time, rel=1e-6)

    def test_queueing_when_fifo_cores_busy(self):
        # 2 FIFO cores, 4 short tasks arriving together: two must wait.
        scheduler, result = run_hybrid([(0.0, 0.5)] * 4)
        responses = sorted(t.response_time for t in result.finished_tasks)
        assert responses[0] == pytest.approx(0.0)
        assert responses[-1] == pytest.approx(0.5, abs=0.01)


class TestLongTasks:
    def test_long_task_preempted_to_cfs_group(self):
        config = HybridConfig(fifo_cores=2, cfs_cores=2, time_limit=0.2)
        scheduler, result = run_hybrid([(0.0, 1.0)], config=config)
        task = result.finished_tasks[0]
        assert scheduler.tasks_preempted_to_cfs == 1
        assert task.preemptions == 1
        assert task.last_core in result.cores_in_group(CFS_GROUP)
        # Total work is conserved (modulo the small migration charge).
        assert task.cpu_time_received == pytest.approx(1.0, abs=0.01)

    def test_fifo_core_freed_after_preemption(self):
        config = HybridConfig(fifo_cores=1, cfs_cores=1, time_limit=0.2)
        scheduler, result = run_hybrid([(0.0, 5.0), (0.05, 0.1)], config=config, num_cores=2)
        short = next(t for t in result.finished_tasks if t.service_time == 0.1)
        # The short task starts right after the long one is preempted at 0.2 s,
        # not after it would have finished (5 s).
        assert short.first_run_time == pytest.approx(0.2, abs=0.02)

    def test_preempted_tasks_round_robin_across_cfs_cores(self):
        config = HybridConfig(
            fifo_cores=2, cfs_cores=2, time_limit=0.1,
            cfs_placement=CFSPlacement.ROUND_ROBIN,
        )
        scheduler, result = run_hybrid([(0.0, 1.0), (0.0, 1.0)], config=config)
        cfs_core_ids = set(result.cores_in_group(CFS_GROUP))
        used = {t.last_core for t in result.finished_tasks}
        assert used == cfs_core_ids

    def test_least_loaded_placement_option(self):
        config = HybridConfig(
            fifo_cores=2, cfs_cores=2, time_limit=0.1,
            cfs_placement=CFSPlacement.LEAST_LOADED,
        )
        scheduler, result = run_hybrid([(0.0, 0.5), (0.0, 0.5)], config=config)
        assert result.completion_ratio == 1.0
        assert scheduler.tasks_preempted_to_cfs == 2

    def test_stats_counters(self):
        config = HybridConfig(fifo_cores=2, cfs_cores=2, time_limit=0.2)
        scheduler, result = run_hybrid([(0.0, 1.0), (0.0, 0.1)], config=config)
        stats = scheduler.stats()
        assert stats["tasks_preempted_to_cfs"] == 1
        assert stats["tasks_completed_in_fifo"] == 1
        assert stats["tasks_completed_in_cfs"] == 1
        assert stats["messages_posted"] >= 4


class TestAdaptiveLimitIntegration:
    def test_limit_series_recorded(self):
        config = HybridConfig(fifo_cores=2, cfs_cores=2).with_adaptive_limit(90, window=10)
        scheduler, result = run_hybrid([(0.1 * i, 0.2) for i in range(20)], config=config)
        series = result.series_values("time_limit")
        assert len(series) >= 20
        # After enough short completions the adaptive limit converges near the
        # observed durations, far below the 1,633 ms default.
        assert series[-1].value < 1.0


class TestGhostIntegration:
    def test_status_words_reflect_lifecycle(self):
        config = HybridConfig(fifo_cores=1, cfs_cores=1, time_limit=0.2)
        scheduler, result = run_hybrid([(0.0, 1.0)], config=config, num_cores=2)
        word = scheduler.enclave.status_word(0)
        assert word.is_dead
        assert word.dispatch_count == 2  # FIFO dispatch + CFS re-dispatch
        assert scheduler.enclave.stats()["live_tasks"] == 0
