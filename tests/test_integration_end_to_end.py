"""End-to-end integration tests across the whole stack.

These exercise the paper's central claims on a mid-sized workload (large
enough for queueing effects, small enough for the unit-test budget):
trace synthesis → extraction → scheduling under FIFO / CFS / hybrid →
metrics → cost.
"""

import pytest

from repro import (
    CFSScheduler,
    FIFOScheduler,
    HybridConfig,
    HybridScheduler,
    SimulationConfig,
    simulate,
)
from repro.cost.cost_model import CostModel
from repro.workload.azure import AzureTraceConfig
from repro.workload.generator import build_workload

NUM_CORES = 10
NUM_TASKS = 1500


def workload():
    """A fresh mid-sized workload with the paper's duration mix, scaled so a
    10-core machine sees a comparable overload to the paper's 50-core one."""
    config = AzureTraceConfig(
        minutes=2,
        num_functions=400,
        target_invocations_first_two_minutes=NUM_TASKS * 100,
        seed=11,
    )
    return build_workload(minutes=2, limit=NUM_TASKS, trace_config=config, seed=11)


def run(scheduler):
    return simulate(scheduler, workload(), config=SimulationConfig(num_cores=NUM_CORES))


@pytest.fixture(scope="module")
def results():
    return {
        "fifo": run(FIFOScheduler()),
        "cfs": run(CFSScheduler()),
        "hybrid": run(HybridScheduler(HybridConfig(fifo_cores=5, cfs_cores=5))),
    }


class TestEndToEnd:
    def test_every_policy_finishes_the_workload(self, results):
        for result in results.values():
            assert result.completion_ratio == 1.0

    def test_cfs_inflates_execution_time(self, results):
        fifo_exec = results["fifo"].summary().total_execution
        cfs_exec = results["cfs"].summary().total_execution
        assert cfs_exec > 3.0 * fifo_exec

    def test_cfs_has_best_response_fifo_worst(self, results):
        fifo_resp = results["fifo"].summary().p99_response
        cfs_resp = results["cfs"].summary().p99_response
        hybrid_resp = results["hybrid"].summary().p99_response
        assert cfs_resp < hybrid_resp
        assert cfs_resp < fifo_resp

    def test_hybrid_execution_far_below_cfs(self, results):
        hybrid_exec = results["hybrid"].summary().p99_execution
        cfs_exec = results["cfs"].summary().p99_execution
        assert hybrid_exec < cfs_exec

    def test_cost_ordering_matches_paper(self, results):
        model = CostModel()
        costs = {
            name: model.workload_cost(result.finished_tasks).total
            for name, result in results.items()
        }
        assert costs["cfs"] > costs["hybrid"]
        assert costs["cfs"] > 2.0 * costs["fifo"]
        # The hybrid stays within a small factor of the FIFO lower bound.
        assert costs["hybrid"] < 5.0 * costs["fifo"]

    def test_preemption_counts(self, results):
        assert results["fifo"].total_preemptions() == 0
        assert results["cfs"].total_preemptions() > results["hybrid"].total_preemptions()

    def test_hybrid_group_bookkeeping(self, results):
        hybrid = results["hybrid"]
        fifo_cores = hybrid.cores_in_group("fifo")
        cfs_cores = hybrid.cores_in_group("cfs")
        assert len(fifo_cores) == 5 and len(cfs_cores) == 5
        # FIFO cores see (almost) no preemptions compared to the CFS cores.
        per_core = hybrid.preemptions_per_core()
        fifo_preempt = sum(per_core[c] for c in fifo_cores)
        cfs_preempt = sum(per_core[c] for c in cfs_cores)
        assert cfs_preempt >= fifo_preempt
