"""Tests for the live mode (real processes, real scheduling syscalls).

Everything here must pass without elevated privileges: real-time switching is
only *attempted* when the probe says it is possible, and the process runner
degrades gracefully when it is not.
"""

import os

import pytest

from repro.live.process_runner import LiveRunResult, ProcessRunner
from repro.live.sched_policy import (
    SchedulingPolicy,
    can_set_affinity,
    can_set_realtime,
    describe_current_policy,
    set_affinity,
    set_policy,
)
from repro.workload.generator import WorkloadItem


class TestSchedPolicy:
    def test_probes_do_not_raise(self):
        assert isinstance(can_set_realtime(), bool)
        assert isinstance(can_set_affinity(), bool)

    def test_describe_current_policy(self):
        description = describe_current_policy()
        assert isinstance(description, str) and description

    def test_policy_constants_resolve(self):
        if not hasattr(os, "SCHED_FIFO"):
            pytest.skip("platform has no scheduling policy constants")
        assert SchedulingPolicy.FIFO.to_constant() == os.SCHED_FIFO
        assert SchedulingPolicy.OTHER.to_constant() == os.SCHED_OTHER

    def test_set_policy_validates_priority(self):
        if not hasattr(os, "sched_setscheduler"):
            pytest.skip("platform has no sched_setscheduler")
        with pytest.raises(ValueError):
            set_policy(0, SchedulingPolicy.FIFO, priority=0)

    def test_set_affinity_requires_cpus(self):
        if not can_set_affinity():
            pytest.skip("platform has no sched_setaffinity")
        with pytest.raises(ValueError):
            set_affinity(0, [])

    def test_set_affinity_to_current_cpus_is_safe(self):
        if not can_set_affinity():
            pytest.skip("platform has no sched_setaffinity")
        current = os.sched_getaffinity(0)
        set_affinity(0, current)
        assert os.sched_getaffinity(0) == current

    def test_realtime_switch_when_permitted(self):
        if not can_set_realtime():
            pytest.skip("host does not allow SCHED_FIFO (needs CAP_SYS_NICE)")
        original_policy = os.sched_getscheduler(0)
        original_param = os.sched_getparam(0)
        try:
            set_policy(0, SchedulingPolicy.FIFO, priority=1)
            assert os.sched_getscheduler(0) == os.SCHED_FIFO
        finally:
            os.sched_setscheduler(0, original_policy, original_param)


class TestProcessRunner:
    def test_runner_validation(self):
        with pytest.raises(ValueError):
            ProcessRunner(fibonacci_cap=0)
        with pytest.raises(ValueError):
            ProcessRunner().run([], speedup=0.0)

    def test_empty_workload(self):
        result = ProcessRunner().run([])
        assert isinstance(result, LiveRunResult)
        assert result.count == 0

    def test_runs_real_processes(self):
        items = [
            WorkloadItem(arrival_time=0.0, fibonacci_n=18, duration=0.01, memory_mb=128),
            WorkloadItem(arrival_time=0.05, fibonacci_n=19, duration=0.01, memory_mb=128),
        ]
        runner = ProcessRunner(fibonacci_cap=20, cpu_ids=[0] if can_set_affinity() else None)
        result = runner.run(items, speedup=10.0)
        assert result.count == 2
        assert all(inv.succeeded for inv in result.invocations)
        assert all(inv.execution_time > 0 for inv in result.invocations)
        assert all(inv.turnaround_time >= inv.execution_time for inv in result.invocations)
        assert len(result.execution_times()) == 2
        assert len(result.turnaround_times()) == 2
