"""Unit tests for the machine / core-group model."""

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.cpu import CoreMode
from repro.simulation.machine import DEFAULT_GROUP, Machine, build_machine
from tests.conftest import make_task


class TestConstruction:
    def test_single_group_by_default(self):
        machine = build_machine(4)
        assert len(machine) == 4
        assert machine.group_sizes() == {DEFAULT_GROUP: 4}

    def test_named_groups(self):
        machine = Machine(SimulationConfig(num_cores=6), groups={"fifo": 2, "cfs": 4})
        assert machine.group_sizes() == {"fifo": 2, "cfs": 4}
        assert {c.group for c in machine.group_cores("fifo")} == {"fifo"}

    def test_group_sizes_must_match_core_count(self):
        with pytest.raises(ValueError):
            Machine(SimulationConfig(num_cores=4), groups={"fifo": 2, "cfs": 4})

    def test_group_modes(self):
        machine = Machine(
            SimulationConfig(num_cores=2),
            groups={"fifo": 1, "cfs": 1},
            group_modes={"fifo": CoreMode.DEDICATED},
        )
        assert machine.group_cores("fifo")[0].mode is CoreMode.DEDICATED
        assert machine.group_cores("cfs")[0].mode is CoreMode.FAIR_SHARE


class TestQueries:
    def test_core_lookup(self):
        machine = build_machine(3)
        assert machine.core(2).core_id == 2
        with pytest.raises(KeyError):
            machine.core(5)

    def test_unknown_group_rejected(self):
        machine = build_machine(2)
        with pytest.raises(KeyError):
            machine.group("nope")

    def test_idle_and_busy_cores(self):
        machine = build_machine(2)
        task = make_task()
        machine.core(0).add_task(task, 0.0)
        assert [c.core_id for c in machine.busy_cores()] == [0]
        assert [c.core_id for c in machine.idle_cores()] == [1]

    def test_idle_excludes_locked(self):
        machine = build_machine(2)
        machine.core(1).lock()
        assert [c.core_id for c in machine.idle_cores()] == [0]

    def test_least_loaded_core(self):
        machine = build_machine(3)
        machine.core(0).add_task(make_task(task_id=0), 0.0)
        machine.core(0).add_task(make_task(task_id=1), 0.0)
        machine.core(1).add_task(make_task(task_id=2), 0.0)
        assert machine.least_loaded_core().core_id == 2

    def test_total_running(self):
        machine = build_machine(2)
        machine.core(0).add_task(make_task(task_id=0), 0.0)
        machine.core(1).add_task(make_task(task_id=1), 0.0)
        assert machine.total_running() == 2


class TestCoreMoves:
    def test_move_core_between_groups(self):
        machine = Machine(SimulationConfig(num_cores=4), groups={"fifo": 2, "cfs": 2})
        moved = machine.move_core(0, "fifo", "cfs")
        assert moved.group == "cfs"
        assert machine.group_sizes() == {"fifo": 1, "cfs": 3}

    def test_move_requires_membership(self):
        machine = Machine(SimulationConfig(num_cores=4), groups={"fifo": 2, "cfs": 2})
        with pytest.raises(ValueError):
            machine.move_core(3, "fifo", "cfs")

    def test_move_to_same_group_rejected(self):
        machine = Machine(SimulationConfig(num_cores=2), groups={"fifo": 1, "cfs": 1})
        with pytest.raises(ValueError):
            machine.move_core(0, "fifo", "fifo")

    def test_ensure_group_creates_empty_group(self):
        machine = build_machine(2)
        group = machine.ensure_group("new")
        assert len(group) == 0
        assert "new" in machine.groups


class TestUtilizationAggregation:
    def test_group_utilization(self):
        machine = Machine(SimulationConfig(num_cores=2), groups={"fifo": 1, "cfs": 1})
        fifo_core = machine.group_cores("fifo")[0]
        task = make_task(service=1.0)
        fifo_core.add_task(task, 0.0)
        machine.sync_all(1.0)
        snapshots = {c.core_id: 0.0 for c in machine.cores}
        assert machine.group_utilization("fifo", snapshots, window=1.0) == pytest.approx(1.0)
        assert machine.group_utilization("cfs", snapshots, window=1.0) == pytest.approx(0.0)
