"""Memory-bounded columnar metrics: reservoir sampling and disk spill.

The streaming PR's third leg: a row cap on the columnar store with two
policies.  ``reservoir`` keeps exact streaming aggregates (count, means,
totals, makespan, billing) plus a seeded uniform sample for percentiles;
``spill`` keeps everything exact by writing full ``.npy`` chunks to a
private temp directory.  Both must be drop-in: summaries, cost and cluster
result helpers work unchanged through ``build_columns_store``.
"""

import os

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate_cluster_stream
from repro.cost.cost_model import CostModel
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.columns import (
    ReservoirTaskColumns,
    SpillTaskColumns,
    TaskColumns,
    build_columns_store,
    merge_columns,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate_stream
from repro.simulation.metrics import TaskMetricsSummary
from repro.simulation.task import Task

from test_streaming import TOTAL_TASKS, make_source


def finished_task(i, arrival=0.0, service=1.0, memory_mb=128):
    task = Task(
        task_id=i, arrival_time=arrival, service_time=service, memory_mb=memory_mb
    )
    task.mark_running(arrival + 0.25, core_id=i % 4)
    task.mark_finished(arrival + 0.25 + service)
    return task


def fill(store, count):
    for i in range(count):
        store.append(finished_task(i, arrival=0.1 * i, service=1.0 + 0.01 * i))
    return store


class TestReservoirColumns:
    def test_below_cap_equals_plain_store(self):
        plain = fill(TaskColumns(), 100)
        capped = fill(ReservoirTaskColumns(cap=100), 100)
        assert np.array_equal(plain.data, capped.data)
        exact = TaskMetricsSummary.from_columns(plain)
        sampled = TaskMetricsSummary.from_columns(capped)
        # Percentiles read the identical retained rows; means come from the
        # running accumulators, so they match only to summation order.
        assert sampled.p99_turnaround == exact.p99_turnaround
        assert sampled.makespan == exact.makespan
        assert sampled.mean_turnaround == pytest.approx(
            exact.mean_turnaround, abs=1e-12
        )

    def test_past_cap_aggregates_stay_exact(self):
        plain = fill(TaskColumns(), 1000)
        capped = fill(ReservoirTaskColumns(cap=64, seed=5), 1000)
        assert len(capped) == 1000  # true count, not the sample size
        assert capped.sample_size() == 64
        exact = TaskMetricsSummary.from_columns(plain)
        sampled = TaskMetricsSummary.from_columns(capped)
        assert sampled.count == exact.count
        assert sampled.mean_execution == pytest.approx(exact.mean_execution, abs=1e-12)
        assert sampled.mean_response == pytest.approx(exact.mean_response, abs=1e-12)
        assert sampled.mean_turnaround == pytest.approx(exact.mean_turnaround, abs=1e-12)
        assert sampled.total_execution == pytest.approx(exact.total_execution, abs=1e-9)
        assert sampled.total_service == pytest.approx(exact.total_service, abs=1e-9)
        assert sampled.makespan == exact.makespan
        # Percentiles come from the sample: close, not exact.
        assert sampled.p50_execution == pytest.approx(exact.p50_execution, rel=0.25)

    def test_sample_rows_are_real_rows(self):
        capped = fill(ReservoirTaskColumns(cap=32, seed=1), 500)
        rows = capped.data
        assert len(rows) == 32
        assert set(rows["task_id"]) <= set(range(500))
        assert len(set(rows["task_id"])) == 32

    def test_billing_stays_exact_past_cap(self):
        model = CostModel(include_request_fee=True)
        plain = fill(TaskColumns(), 400)
        capped = fill(ReservoirTaskColumns(cap=16, seed=2), 400)
        exact = model.workload_cost_columns(plain)
        sampled = model.workload_cost_columns(capped)
        assert sampled.invocations == exact.invocations == 400
        assert sampled.billed_seconds == pytest.approx(exact.billed_seconds, abs=1e-9)
        assert sampled.execution_cost == pytest.approx(exact.execution_cost, rel=1e-12)
        assert sampled.request_cost == pytest.approx(exact.request_cost, rel=1e-12)

    def test_seeded_sample_is_reproducible(self):
        a = fill(ReservoirTaskColumns(cap=16, seed=9), 300)
        b = fill(ReservoirTaskColumns(cap=16, seed=9), 300)
        assert np.array_equal(a.data, b.data)

    def test_rejects_unfinished_and_bad_cap(self):
        with pytest.raises(ValueError):
            ReservoirTaskColumns(cap=0)
        store = ReservoirTaskColumns(cap=4)
        with pytest.raises(ValueError):
            store.append(Task(task_id=0, arrival_time=0.0, service_time=1.0))


class TestSpillColumns:
    def test_spills_and_rehydrates_exactly(self, tmp_path):
        plain = fill(TaskColumns(), 500)
        spill = fill(SpillTaskColumns(cap=64, spill_dir=str(tmp_path)), 500)
        assert len(spill) == 500
        assert np.array_equal(
            np.sort(plain.data, order="task_id"),
            np.sort(spill.data, order="task_id"),
        )
        assert TaskMetricsSummary.from_columns(spill) == TaskMetricsSummary.from_columns(
            plain
        )
        spill.close()

    def test_close_removes_spill_files(self, tmp_path):
        spill = fill(SpillTaskColumns(cap=16, spill_dir=str(tmp_path)), 100)
        subdirs = os.listdir(tmp_path)
        assert len(subdirs) == 1
        chunk_dir = tmp_path / subdirs[0]
        assert any(name.endswith(".npy") for name in os.listdir(chunk_dir))
        spill.close()
        assert not chunk_dir.exists()
        spill.close()  # idempotent

    def test_two_stores_share_one_spill_dir(self, tmp_path):
        first = fill(SpillTaskColumns(cap=8, spill_dir=str(tmp_path)), 50)
        second = fill(SpillTaskColumns(cap=8, spill_dir=str(tmp_path)), 50)
        assert len(first.data) == len(second.data) == 50
        first.close()
        # Closing one store must not touch the other's chunks.
        assert len(second.data) == 50
        second.close()


class TestFactoryAndMerge:
    def test_factory_dispatch(self, tmp_path):
        assert type(build_columns_store(None)) is TaskColumns
        assert isinstance(build_columns_store(10), ReservoirTaskColumns)
        spill = build_columns_store(10, policy="spill", spill_dir=str(tmp_path))
        assert isinstance(spill, SpillTaskColumns)
        spill.close()
        with pytest.raises(ValueError, match="unknown metrics policy"):
            build_columns_store(10, policy="bogus")

    def test_merge_reads_retained_rows(self, tmp_path):
        plain = fill(TaskColumns(), 20)
        capped = fill(ReservoirTaskColumns(cap=8, seed=3), 100)
        spill = fill(SpillTaskColumns(cap=8, spill_dir=str(tmp_path)), 30)
        merged = merge_columns([plain, capped, spill])
        # A reservoir contributes its sample; a spill store its full history.
        assert len(merged) == 20 + 8 + 30
        spill.close()


class TestCappedStreamingRuns:
    def test_single_machine_summary_exact_past_cap(self):
        config = SimulationConfig(num_cores=2)
        ref = simulate_stream(FIFOScheduler(), make_source(), config=config)
        capped = simulate_stream(
            FIFOScheduler(), make_source(), config=config, metrics_cap=10
        )
        exact, sampled = ref.summary(), capped.summary()
        assert sampled.count == exact.count == TOTAL_TASKS
        assert sampled.mean_turnaround == pytest.approx(
            exact.mean_turnaround, abs=1e-12
        )
        assert sampled.makespan == exact.makespan
        assert len(capped.task_columns().data) == 10

    def test_cluster_run_with_cap_keeps_helpers_working(self):
        config = ClusterConfig(num_nodes=3, cores_per_node=2, dispatcher="jsq")
        ref = simulate_cluster_stream(make_source(), config=config)
        capped = simulate_cluster_stream(make_source(), config=config, metrics_cap=10)
        assert capped.summary().count == TOTAL_TASKS
        assert capped.summary().mean_turnaround == pytest.approx(
            ref.summary().mean_turnaround, abs=1e-12
        )
        assert capped.tasks_per_node() == ref.tasks_per_node()
        assert capped.unserved_tasks() == 0
        assert "tasks" in capped.describe()

    def test_cluster_spill_run_is_exact(self, tmp_path):
        config = ClusterConfig(num_nodes=2, cores_per_node=2, dispatcher="jsq")
        ref = simulate_cluster_stream(make_source(), config=config)
        spilled = simulate_cluster_stream(
            make_source(),
            config=config,
            metrics_cap=8,
            metrics_policy="spill",
            spill_dir=str(tmp_path),
        )
        assert np.array_equal(
            np.sort(ref.task_columns().data, order="task_id"),
            np.sort(spilled.task_columns().data, order="task_id"),
        )
        assert spilled.summary() == ref.summary()

    def test_per_node_cap_budget_is_shared(self):
        # 8 nodes share the cap: each node's store gets cap // 8 (floored at
        # 256), so total retained rows stay O(cap), not O(cap * nodes).
        from repro.cluster import ClusterSimulator

        config = ClusterConfig(num_nodes=8, cores_per_node=2, dispatcher="jsq")
        sim = ClusterSimulator(config=config, metrics_cap=4096)
        assert sim.columns.cap == 4096  # the fleet store keeps the full cap
        assert [n.engine.collector.columns.cap for n in sim.nodes] == [512] * 8
        floored = ClusterSimulator(config=config, metrics_cap=100)
        assert [n.engine.collector.columns.cap for n in floored.nodes] == [256] * 8
        sim.submit_stream(make_source(), chunk=8)
        result = sim.run()
        assert result.finished_count == TOTAL_TASKS
