"""Unit tests for metric collection and the result container."""

import pytest

from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.cpu import Core
from repro.simulation.engine import simulate
from repro.simulation.metrics import MetricsCollector, TaskMetricsSummary
from tests.conftest import make_task, make_tasks


def finished_task(task_id=0, arrival=0.0, start=1.0, end=2.0):
    task = make_task(task_id=task_id, arrival=arrival, service=end - start)
    task.mark_running(start, core_id=0)
    task.account_service(end - start)
    task.mark_finished(end)
    return task


class TestSummary:
    def test_empty_summary_is_all_zero(self):
        summary = TaskMetricsSummary.from_tasks([])
        assert summary.count == 0
        assert summary.p99_execution == 0.0

    def test_summary_values(self):
        tasks = [finished_task(i, arrival=0.0, start=i, end=i + 1.0) for i in range(4)]
        summary = TaskMetricsSummary.from_tasks(tasks)
        assert summary.count == 4
        assert summary.mean_execution == pytest.approx(1.0)
        assert summary.mean_response == pytest.approx(1.5)
        assert summary.makespan == pytest.approx(4.0)
        assert summary.total_execution == pytest.approx(4.0)

    def test_as_dict_round_trip(self):
        summary = TaskMetricsSummary.from_tasks([finished_task()])
        data = summary.as_dict()
        assert data["count"] == 1
        assert set(data) >= {"p99_execution", "p99_response", "p99_turnaround"}


class TestCollector:
    def test_rejects_unfinished_task(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.on_task_finished(make_task())

    def test_series_recording(self):
        collector = MetricsCollector()
        collector.record_series("limit", 1.0, 0.5)
        collector.record_series("limit", 2.0, 0.7)
        points = collector.series_values("limit")
        assert [(p.time, p.value) for p in points] == [(1.0, 0.5), (2.0, 0.7)]
        assert collector.series_values("missing") == []

    def test_utilization_sampling(self):
        collector = MetricsCollector()
        core = Core(core_id=0, group="all")
        core.add_task(make_task(service=1.0), 0.0)
        collector.start_utilization_window([core], 0.0)
        sample = collector.sample_utilization([core], 1.0, window=1.0)
        assert sample.per_core[0] == pytest.approx(1.0)
        assert sample.per_group["all"] == pytest.approx(1.0)
        assert sample.group_sizes == {"all": 1}


class TestSimulationResult:
    def test_result_accessors(self):
        result = simulate(
            FIFOScheduler(),
            make_tasks([(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)]),
            config=SimulationConfig(num_cores=1),
        )
        assert result.completion_ratio == 1.0
        assert len(result.execution_times()) == 3
        assert result.total_preemptions() == 0
        assert set(result.preemptions_per_core()) == {0}
        assert result.cores_in_group("all") == [0]
        assert "fifo" in result.describe()

    def test_unfinished_tasks_listed(self):
        result = simulate(
            FIFOScheduler(),
            make_tasks([(0.0, 5.0), (0.0, 5.0)]),
            config=SimulationConfig(num_cores=1, max_simulated_time=6.0),
        )
        assert len(result.finished_tasks) == 1
        assert len(result.unfinished_tasks) == 1
        assert 0.0 < result.completion_ratio < 1.0
