"""Dispatch-path middleware: unit, property, and equivalence tests.

Covers the PR's test-first contract:

* per-middleware units — token-bucket refill at exact sim-time boundaries,
  deterministic exponential backoff schedules, the shed-at-deadline edge
  where ``deadline == now``;
* the chain — ordered first-verdict-wins dispatch, hook-override pruning,
  stats keyed (and deduplicated) by name;
* registry + declarative specs — all five built-ins round-trip through
  ``Scenario`` JSON;
* cluster integration — rejected tasks never reach a node, retries through
  the ordinary event path complete exactly once even while work stealing is
  rescuing queues (the drain-rescue/retry double-landing regression), and
  an *empty* chain reproduces the pre-middleware golden metrics bit-for-bit;
* hypothesis properties — order invariance of commutative chains,
  exactly-once completion under retry + stealing, rejected-tasks-never-land.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from golden_scenarios import TOLERANCE, assert_close, load_golden
from repro.cluster import ClusterConfig, NodeSpec, simulate_cluster
from repro.experiments.common import two_minute_workload
from repro.middleware import (
    AdmissionControlMiddleware,
    DeadlineShedMiddleware,
    Middleware,
    MiddlewareChain,
    MiddlewareSpec,
    RateLimitMiddleware,
    SLOTrackerMiddleware,
    TimeoutRetryMiddleware,
    TokenBucket,
    available_middlewares,
    create_middleware,
    register_middleware,
    reject,
)
from repro.scenario import Scenario
from repro.simulation.events import EventPriority
from repro.simulation.task import Task
from repro.telemetry import TelemetrySpec

SIM_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Workload strategy: small batches of (arrival, service) pairs.
task_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.01, max_value=3.0),
    ),
    min_size=1,
    max_size=25,
)


def build_tasks(specs):
    return [
        Task(task_id=i, arrival_time=round(a, 4), service_time=round(s, 4))
        for i, (a, s) in enumerate(specs)
    ]


def tiny_cluster_config(**overrides) -> ClusterConfig:
    defaults = dict(num_nodes=2, cores_per_node=1, scheduler="fifo")
    defaults.update(overrides)
    return ClusterConfig(**defaults)


# --------------------------------------------------------------- token bucket


class TestTokenBucket:
    def test_starts_full_and_burst_caps_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0)
        assert bucket.tokens == 3.0
        for _ in range(3):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        bucket.refill(1000.0)
        assert bucket.tokens == 3.0

    def test_refill_at_exact_sim_time_boundary(self):
        """A bucket refilled to exactly 1.0 token admits (epsilon slack)."""
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.25)  # only half a token back
        assert bucket.try_take(0.5)  # exactly one token at the boundary
        assert not bucket.try_take(0.5)

    def test_time_until_token_matches_refill(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        assert bucket.try_take(0.0)
        wait = bucket.time_until_token()
        assert math.isclose(wait, 0.25)
        assert bucket.try_take(0.0 + wait)

    def test_lazy_refill_never_rewinds(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(5.0)
        bucket.refill(2.0)  # out-of-order observation must not credit tokens
        assert bucket.tokens == 0.0


class TestRateLimitMiddleware:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            RateLimitMiddleware(rate=0.0)
        with pytest.raises(ValueError):
            RateLimitMiddleware(mode="drop")
        with pytest.raises(ValueError):
            RateLimitMiddleware(rate=10.0, burst=0.5)

    def test_default_burst_never_below_one(self):
        assert RateLimitMiddleware(rate=0.25).burst == 1.0
        assert RateLimitMiddleware(rate=8.0).burst == 8.0

    def test_delay_mode_completes_every_task(self):
        """Deferred tasks re-enter the chain and all eventually finish."""
        # Same function name: all ten invocations share one token bucket.
        tasks = [
            Task(task_id=i, arrival_time=0.0, service_time=0.05, name="fn")
            for i in range(10)
        ]
        result = simulate_cluster(
            tasks,
            config=tiny_cluster_config(),
            middleware=[RateLimitMiddleware(rate=2.0, burst=1.0, mode="delay")],
        )
        assert len(result.finished_tasks) == 10
        assert result.tasks_rejected == 0
        stats = result.middleware_stats["rate_limit"]
        assert stats["throttled"] > 0  # the limiter actually engaged

    def test_shed_mode_rejects_over_rate_arrivals(self):
        tasks = [
            Task(task_id=i, arrival_time=0.0, service_time=0.05, name="fn")
            for i in range(10)
        ]
        result = simulate_cluster(
            tasks,
            config=tiny_cluster_config(),
            middleware=[RateLimitMiddleware(rate=2.0, burst=2.0, mode="shed")],
        )
        assert result.tasks_rejected == 8  # burst of 2, nine simultaneous
        assert len(result.finished_tasks) == 2


# -------------------------------------------------------------------- retry


class TestTimeoutRetry:
    def test_backoff_schedule_is_deterministic(self):
        mw = TimeoutRetryMiddleware(timeout=5.0, backoff=0.5, backoff_factor=2.0)
        assert [mw.backoff_delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            TimeoutRetryMiddleware(timeout=0.0)
        with pytest.raises(ValueError):
            TimeoutRetryMiddleware(max_retries=-1)
        with pytest.raises(ValueError):
            TimeoutRetryMiddleware(backoff_factor=0.5)

    def test_retry_rejoins_through_event_path(self):
        """A queued-too-long task is pulled, backed off, and still finishes."""
        # One-core node: the 0.05s tasks queue behind a 2s head-of-line task.
        tasks = build_tasks([(0.0, 2.0), (0.0, 0.4), (0.0, 0.4)])
        result = simulate_cluster(
            tasks,
            config=tiny_cluster_config(num_nodes=1),
            middleware=[
                TimeoutRetryMiddleware(timeout=0.5, max_retries=2, backoff=0.1)
            ],
        )
        assert len(result.finished_tasks) == 3
        stats = result.middleware_stats["timeout_retry"]
        assert stats["retries"] > 0
        retried = [t for t in result.tasks if "retries" in t.metadata]
        assert retried, "some task should carry retry metadata"
        # Conservation: every task completed exactly once despite re-entries.
        completed = sum(s["completed"] for s in result.node_stats.values())
        assert completed == len(result.finished_tasks)

    def test_same_seed_runs_identical_under_retry(self):
        def run_once():
            tasks = build_tasks([(0.0, 2.0), (0.0, 0.4), (0.1, 0.4), (0.2, 0.3)])
            result = simulate_cluster(
                tasks,
                config=tiny_cluster_config(),
                middleware=[
                    TimeoutRetryMiddleware(timeout=0.3, max_retries=3, backoff=0.2)
                ],
            )
            return (
                [(t.task_id, t.completion_time) for t in result.finished_tasks],
                result.middleware_stats,
            )

        assert run_once() == run_once()


# ------------------------------------------------------------------ shedding


class TestDeadlineShed:
    def _task(self, deadline=None, arrival=0.0, service=1.0):
        return Task(
            task_id=0, arrival_time=arrival, service_time=service, deadline=deadline
        )

    def test_deadline_equal_to_now_sheds(self):
        """The hard edge: a deadline of exactly ``now`` cannot be met."""
        mw = DeadlineShedMiddleware()
        assert mw.on_dispatch(self._task(deadline=5.0), 5.0) == reject(mw.name)
        assert mw.shed == 1

    def test_future_deadline_admits(self):
        mw = DeadlineShedMiddleware()
        assert mw.on_dispatch(self._task(deadline=5.1), 5.0) is None
        assert mw.admitted == 1

    def test_margin_moves_the_edge(self):
        mw = DeadlineShedMiddleware(margin=1.0)
        assert mw.on_dispatch(self._task(deadline=5.5), 5.0) is not None
        assert mw.on_dispatch(self._task(deadline=6.5), 5.0) is None

    def test_relative_deadline_written_back(self):
        mw = DeadlineShedMiddleware(relative_deadline=10.0)
        task = self._task(arrival=2.0)
        assert mw.on_dispatch(task, 2.0) is None
        assert task.deadline == 12.0

    def test_no_deadline_no_relative_admits(self):
        mw = DeadlineShedMiddleware()
        assert mw.on_dispatch(self._task(), 100.0) is None

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            DeadlineShedMiddleware(margin=-1.0)
        with pytest.raises(ValueError):
            DeadlineShedMiddleware(relative_deadline=0.0)


# ---------------------------------------------------------------- slo tracker


class TestSLOTracker:
    def test_attainment_counts_rejections_as_misses(self):
        tasks = build_tasks([(0.0, 0.1)] * 6)
        result = simulate_cluster(
            tasks,
            config=tiny_cluster_config(),
            middleware=[
                AdmissionControlMiddleware(max_queue_depth=1),
                SLOTrackerMiddleware(target=60.0),
            ],
        )
        stats = result.middleware_stats["slo_tracker"]
        assert stats["rejected"] == result.tasks_rejected > 0
        total = stats["attained"] + stats["missed"] + stats["rejected"]
        assert total == len(tasks)
        assert math.isclose(stats["attainment"], stats["attained"] / total)

    def test_empty_run_attains_trivially(self):
        assert SLOTrackerMiddleware().attainment() == 1.0

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            SLOTrackerMiddleware(target=0.0)
        with pytest.raises(ValueError):
            SLOTrackerMiddleware(metric="latency")


# ------------------------------------------------------------ chain semantics


class _Tag(Middleware):
    """Test middleware recording hook calls; optionally vetoing dispatch."""

    def __init__(self, name, verdict=None, log=None):
        self.name = name
        self.verdict = verdict
        self.log = log if log is not None else []

    def on_dispatch(self, task, now):
        self.log.append((self.name, task.task_id))
        return self.verdict


class TestMiddlewareChain:
    def test_first_verdict_wins_in_order(self):
        log = []
        first = _Tag("first", verdict=reject("first"), log=log)
        second = _Tag("second", verdict=reject("second"), log=log)
        chain = MiddlewareChain([first, second])
        task = Task(task_id=7, arrival_time=0.0, service_time=1.0)
        assert chain.on_dispatch(task, 0.0) == reject("first")
        # The losing middleware never saw the task.
        assert log == [("first", 7)]

    def test_non_middleware_entries_rejected(self):
        with pytest.raises(TypeError):
            MiddlewareChain([object()])

    def test_hook_pruning_skips_base_noops(self):
        chain = MiddlewareChain([AdmissionControlMiddleware()])
        assert not chain.has_land_hooks  # admission only overrides dispatch
        chain = MiddlewareChain([TimeoutRetryMiddleware()])
        assert chain.has_land_hooks

    def test_stats_deduplicate_names(self):
        chain = MiddlewareChain(
            [
                AdmissionControlMiddleware(max_queue_depth=4),
                AdmissionControlMiddleware(max_queue_depth=8),
            ]
        )
        stats = chain.stats()
        assert set(stats) == {"admission", "admission#1"}
        assert stats["admission"]["max_queue_depth"] == 4.0
        assert stats["admission#1"]["max_queue_depth"] == 8.0

    def test_empty_chain_collapses_to_no_middleware(self):
        tasks = build_tasks([(0.0, 0.1)])
        result = simulate_cluster(
            tasks, config=tiny_cluster_config(), middleware=[]
        )
        assert result.middleware_names == []
        assert result.middleware_stats == {}


# --------------------------------------------------------- registry and specs


class TestRegistryAndSpecs:
    def test_builtins_registered(self):
        assert available_middlewares() == [
            "admission",
            "deadline_shed",
            "rate_limit",
            "slo_tracker",
            "timeout_retry",
        ]

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError):
            register_middleware("admission", AdmissionControlMiddleware)

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(KeyError, match="admission"):
            create_middleware("nope")

    def test_create_passes_kwargs(self):
        mw = create_middleware("rate_limit", rate=7.0, mode="delay")
        assert isinstance(mw, RateLimitMiddleware)
        assert mw.rate == 7.0 and mw.mode == "delay"

    def test_spec_coercion(self):
        assert MiddlewareSpec.coerce("admission") == MiddlewareSpec("admission")
        spec = MiddlewareSpec.coerce({"name": "rate_limit", "params": {"rate": 5}})
        assert spec.params == {"rate": 5}
        assert MiddlewareSpec.coerce(spec) is spec
        with pytest.raises(TypeError):
            MiddlewareSpec.coerce(42)

    def test_spec_build_and_roundtrip(self):
        spec = MiddlewareSpec("deadline_shed", {"relative_deadline": 30.0})
        mw = spec.build()
        assert isinstance(mw, DeadlineShedMiddleware)
        assert mw.relative_deadline == 30.0
        assert MiddlewareSpec.from_dict(spec.to_dict()) == spec
        assert MiddlewareSpec("admission").to_dict() == {"name": "admission"}

    def test_all_five_round_trip_through_scenario_json(self):
        scenario = Scenario(
            num_nodes=2,
            cores_per_node=2,
            middleware=(
                {"name": "admission", "params": {"max_queue_depth": 256}},
                {"name": "rate_limit", "params": {"rate": 50, "mode": "delay"}},
                {"name": "timeout_retry", "params": {"timeout": 5}},
                {"name": "deadline_shed", "params": {"relative_deadline": 30}},
                "slo_tracker",
            ),
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert [spec.name for spec in restored.middleware] == [
            "admission",
            "rate_limit",
            "timeout_retry",
            "deadline_shed",
            "slo_tracker",
        ]
        # The declarative chain builds real instances through the config.
        config = restored.build_cluster_config()
        chain = MiddlewareChain([spec.build() for spec in config.middleware])
        assert chain.names() == [spec.name for spec in restored.middleware]

    def test_single_machine_scenario_rejects_middleware(self):
        with pytest.raises(ValueError, match="middleware"):
            Scenario(middleware=("admission",))

    def test_config_with_middleware_helper(self):
        config = tiny_cluster_config().with_middleware(
            "admission", {"name": "slo_tracker", "params": {"target": 2.0}}
        )
        assert [spec.name for spec in config.middleware] == [
            "admission",
            "slo_tracker",
        ]


# -------------------------------------------------------- cluster integration


class TestClusterIntegration:
    def test_rejected_tasks_never_reach_a_node(self):
        tasks = build_tasks([(0.0, 0.5)] * 8)
        result = simulate_cluster(
            tasks,
            config=tiny_cluster_config(),
            middleware=[AdmissionControlMiddleware(max_queue_depth=1)],
        )
        rejected = result.rejected_tasks()
        assert result.tasks_rejected == len(rejected) > 0
        for task in rejected:
            assert task.metadata["rejected"] == "admission"
            assert "node_id" not in task.metadata
            assert not task.is_finished
        assert len(result.finished_tasks) + len(rejected) == len(tasks)

    def test_describe_reports_the_chain(self):
        tasks = build_tasks([(0.0, 0.1)] * 4)
        result = simulate_cluster(
            tasks,
            config=tiny_cluster_config(),
            middleware=[
                AdmissionControlMiddleware(max_queue_depth=1),
                SLOTrackerMiddleware(target=5.0),
            ],
        )
        assert result.middleware_names == ["admission", "slo_tracker"]
        assert "admission -> slo_tracker" in result.describe()

    def test_config_specs_build_the_chain(self):
        tasks = build_tasks([(0.0, 0.1)] * 4)
        config = tiny_cluster_config(
            middleware=({"name": "admission", "params": {"max_queue_depth": 1}},)
        )
        result = simulate_cluster(tasks, config=config)
        assert result.middleware_names == ["admission"]
        assert result.tasks_rejected > 0

    def test_middleware_telemetry_emission(self):
        """Rejections emit instants, retries backoff spans, SLO a gauge."""
        tasks = build_tasks([(0.0, 2.0), (0.0, 0.3), (0.0, 0.3), (0.0, 0.3)])
        result = simulate_cluster(
            tasks,
            config=tiny_cluster_config(num_nodes=1),
            middleware=[
                AdmissionControlMiddleware(max_queue_depth=2),
                TimeoutRetryMiddleware(timeout=0.4, max_retries=2, backoff=0.2),
                SLOTrackerMiddleware(target=1.0),
            ],
            telemetry=TelemetrySpec(trace=True, sample_interval=0.5),
        )
        snapshot = result.telemetry
        names = {event[0] for event in snapshot.instants}
        assert "reject:admission" in names
        span_names = {span[0] for span in snapshot.spans}
        assert "backoff" in span_names
        assert "middleware.slo_attainment" in result.series
        assert result.telemetry.counters["middleware.retry.timeouts"] > 0
        assert result.telemetry.counters["middleware.rejected.admission"] > 0

    def test_retry_and_drain_rescue_cannot_double_land(self):
        """Regression: a task stolen mid-backoff-window must not also retry.

        Node 0 runs A and queues C; node 1 runs B.  At t=0.8 node 0 drains,
        so work stealing puts C on the wire to node 1 (landing t=1.3).  C's
        retry timer (armed at t=0, timeout 1.0) fires at t=1.0 while C is
        in flight: the release must fail — C is in no queue — and the retry
        must be dropped, otherwise C would land twice.
        """
        tasks = [
            Task(task_id=0, arrival_time=0.0, service_time=2.0),  # A -> node 0
            Task(task_id=1, arrival_time=0.0, service_time=2.0),  # B -> node 1
            Task(task_id=2, arrival_time=0.0, service_time=0.5),  # C queues on 0
        ]
        from repro.cluster.simulator import ClusterSimulator

        cluster = ClusterSimulator(
            config=tiny_cluster_config(
                dispatcher="round_robin",
                migration="work_stealing",
                migration_kwargs={"interval": 10.0, "delay": 0.5},
            ),
            middleware=[
                TimeoutRetryMiddleware(timeout=1.0, max_retries=3, backoff=0.1)
            ],
        )
        cluster.submit(tasks)
        cluster.events.push(
            0.8,
            lambda: cluster.drain_node(cluster.nodes[0]),
            priority=EventPriority.CONTROL,
            tag="test-drain",
        )
        result = cluster.run()
        c = result.tasks[2]
        assert c.is_finished
        assert "retries" not in c.metadata  # the in-flight retry was dropped
        assert result.middleware_stats["timeout_retry"]["retries"] == 0
        # Exactly-once landing: one steal, counted once, every task done once.
        assert result.tasks_migrated == 1
        stolen_in = sum(s["stolen_in"] for s in result.node_stats.values())
        assert stolen_in == result.tasks_migrated
        completed = sum(s["completed"] for s in result.node_stats.values())
        assert completed == len(result.finished_tasks) == 3


# ----------------------------------------------------------------- properties


def _run_chain(specs, middleware, migration=None):
    config = tiny_cluster_config(
        migration=migration,
        migration_kwargs={"delay": 0.05} if migration else {},
    )
    return simulate_cluster(build_tasks(specs), config=config, middleware=middleware)


@SIM_SETTINGS
@given(specs=task_specs)
def test_commutative_chain_order_invariance(specs):
    """Admission and pure observation commute: order cannot change the run."""
    forward = _run_chain(
        specs,
        [AdmissionControlMiddleware(max_queue_depth=3), SLOTrackerMiddleware()],
    )
    reverse = _run_chain(
        specs,
        [SLOTrackerMiddleware(), AdmissionControlMiddleware(max_queue_depth=3)],
    )
    fwd = sorted((t.task_id, t.completion_time) for t in forward.finished_tasks)
    rev = sorted((t.task_id, t.completion_time) for t in reverse.finished_tasks)
    assert fwd == rev
    assert {t.task_id for t in forward.rejected_tasks()} == {
        t.task_id for t in reverse.rejected_tasks()
    }


@SIM_SETTINGS
@given(specs=task_specs)
def test_exactly_once_completion_under_retry_and_stealing(specs):
    """Aggressive retries + work stealing still complete every task once."""
    result = _run_chain(
        specs,
        [TimeoutRetryMiddleware(timeout=0.25, max_retries=3, backoff=0.1)],
        migration="work_stealing",
    )
    assert len(result.finished_tasks) == len(specs)
    completed = sum(s["completed"] for s in result.node_stats.values())
    assert completed == len(specs)
    # The migration invariant is untouched by retry releases.
    stolen_in = sum(s["stolen_in"] for s in result.node_stats.values())
    assert stolen_in == result.tasks_migrated


@SIM_SETTINGS
@given(specs=task_specs)
def test_exactly_once_under_chaos_retry_and_stealing(specs):
    """Seeded node failures composed with retries and stealing still deliver
    every task exactly once, and the loss bookkeeping balances."""
    from repro.chaos import ChaosSpec

    config = tiny_cluster_config(
        num_nodes=3,
        migration="work_stealing",
        migration_kwargs={"delay": 0.05},
        chaos=ChaosSpec(crash_rate=0.4, max_failures=2),
    )
    result = simulate_cluster(
        build_tasks(specs),
        config=config,
        middleware=[TimeoutRetryMiddleware(timeout=0.25, max_retries=3, backoff=0.1)],
    )
    assert len(result.finished_tasks) == len(specs)
    completed = sum(s["completed"] for s in result.node_stats.values())
    assert completed == len(specs)
    stolen_in = sum(s["stolen_in"] for s in result.node_stats.values())
    assert stolen_in == result.tasks_migrated
    # Every loss is attributed to a task's metadata, and vice versa.
    assert result.tasks_lost == sum(
        t.metadata.get("node_failures", 0) for t in result.tasks
    )


@SIM_SETTINGS
@given(specs=task_specs)
def test_rejected_tasks_never_land(specs):
    result = _run_chain(specs, [AdmissionControlMiddleware(max_queue_depth=1)])
    for task in result.rejected_tasks():
        assert "node_id" not in task.metadata
        assert task.first_run_time is None
    assert len(result.finished_tasks) + result.tasks_rejected == len(specs)


# ------------------------------------------------------------------- golden


def test_empty_chain_matches_pre_middleware_golden():
    """A cluster built with ``middleware=[]`` reproduces the golden metrics
    captured before the middleware subsystem existed, within 1e-9."""
    config = ClusterConfig(
        node_specs=(
            NodeSpec(cores=24, count=2, label="big"),
            NodeSpec(cores=8, count=4, label="little"),
        ),
        scheduler="fifo",
        dispatcher="jsq",
        migration="work_stealing",
        middleware=(),
    )
    from repro.simulation.metrics import TaskMetricsSummary

    result = simulate_cluster(
        two_minute_workload(0.1), config=config, middleware=[]
    )
    observed = {
        f"{key}": float(value)
        for key, value in TaskMetricsSummary.from_tasks(result.tasks).as_dict().items()
    }
    observed["tasks_migrated"] = float(result.tasks_migrated)
    observed["simulated_time"] = float(result.simulated_time)
    for node_id, stats in sorted(result.node_stats.items()):
        observed[f"node{node_id}.assigned"] = float(stats["assigned"])
        observed[f"node{node_id}.completed"] = float(stats["completed"])
        observed[f"node{node_id}.stolen_in"] = float(stats["stolen_in"])
        observed[f"node{node_id}.stolen_away"] = float(stats["stolen_away"])
    golden = load_golden()["hetero_cluster_stealing"]
    assert_close("hetero_cluster_stealing (middleware=[])", golden, observed)


def test_golden_tolerance_is_the_contract():
    assert TOLERANCE == 1e-9
