"""Work-stealing migration: policy planning, simulator integration, delays."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    Migration,
    MigrationPolicy,
    NodeSpec,
    WorkStealingPolicy,
    simulate_cluster,
)
from repro.cluster.node import NodeState
from repro.schedulers.edf import EDFScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.sjf import SJFScheduler
from repro.schedulers.srtf import SRTFScheduler
from repro.simulation.task import Task, make_tasks


def pinned_tasks(specs, function_id="same-fn"):
    """Tasks that consistent hashing routes to one node (a hot spot)."""
    tasks = make_tasks(specs)
    for task in tasks:
        task.metadata["function_id"] = function_id
    return tasks


def hot_spot_config(**overrides) -> ClusterConfig:
    """Two 1-core nodes; consistent hashing pins every task to one of them."""
    defaults = dict(
        num_nodes=2,
        cores_per_node=1,
        scheduler="fifo",
        dispatcher="consistent_hash",
        migration="work_stealing",
        migration_kwargs={"interval": 0.05, "delay": 0.001},
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class StubNode:
    """Minimal stand-in exposing the surface the migration policy reads."""

    def __init__(self, node_id, queued=0, idle=0, capacity=1.0,
                 state=NodeState.ACTIVE, inflight=None):
        self.node_id = node_id
        self.state = state
        self.capacity = capacity
        self.inflight = queued if inflight is None else inflight
        self._idle = idle
        self._queued = [
            Task(task_id=node_id * 1000 + i, arrival_time=0.0, service_time=1.0)
            for i in range(queued)
        ]

    @property
    def is_active(self):
        return self.state is NodeState.ACTIVE

    def stealable_tasks(self):
        return list(self._queued)

    def idle_core_count(self):
        return self._idle


class TestPolicyValidation:
    def test_interval_and_delay_validated(self):
        with pytest.raises(ValueError):
            WorkStealingPolicy(interval=0.0)
        with pytest.raises(ValueError):
            WorkStealingPolicy(delay=-1.0)
        with pytest.raises(ValueError):
            WorkStealingPolicy(min_backlog=-0.1)
        with pytest.raises(ValueError):
            WorkStealingPolicy(max_steals_per_tick=0)

    def test_config_migration_validation(self):
        with pytest.raises(KeyError):
            ClusterSimulator(config=ClusterConfig(migration="definitely-not-real"))


class TestWorkStealingPlan:
    def test_idle_node_steals_from_deep_backlog(self):
        policy = WorkStealingPolicy()
        hot = StubNode(0, queued=6, idle=0)
        cool = StubNode(1, queued=0, idle=2)
        plans = policy.plan([hot, cool], now=0.0)
        assert len(plans) == 2  # one per idle core
        assert all(p.source is hot and p.target is cool for p in plans)

    def test_steals_the_tail_preserving_head_of_line(self):
        policy = WorkStealingPolicy()
        hot = StubNode(0, queued=3, idle=0)
        cool = StubNode(1, queued=0, idle=1)
        plans = policy.plan([hot, cool], now=0.0)
        assert len(plans) == 1
        assert plans[0].task is hot.stealable_tasks()[-1]

    def test_no_idle_cores_no_steals(self):
        policy = WorkStealingPolicy()
        nodes = [StubNode(0, queued=9, idle=0), StubNode(1, queued=1, idle=0)]
        assert policy.plan(nodes, now=0.0) == []

    def test_no_backlog_no_steals(self):
        policy = WorkStealingPolicy()
        nodes = [StubNode(0, queued=0, idle=2), StubNode(1, queued=0, idle=2)]
        assert policy.plan(nodes, now=0.0) == []

    def test_capacity_normalisation_picks_hottest_victim(self):
        """4 queued on capacity 8 (0.5) is cooler than 3 queued on capacity 2."""
        policy = WorkStealingPolicy()
        big = StubNode(0, queued=4, idle=0, capacity=8.0)
        little = StubNode(1, queued=3, idle=0, capacity=2.0)
        cool = StubNode(2, queued=0, idle=1, capacity=2.0)
        plans = policy.plan([big, little, cool], now=0.0)
        assert len(plans) == 1
        assert plans[0].source is little

    def test_victim_with_idle_cores_does_not_block_other_thieves(self):
        """A non-work-conserving node-like that is both hungriest and hottest
        must not stall the pass: other idle nodes still steal from it."""
        policy = WorkStealingPolicy()
        weird = StubNode(0, queued=12, idle=4)  # backlog *and* idle cores
        cool = StubNode(1, queued=0, idle=1)
        plans = policy.plan([weird, cool], now=0.0)
        assert len(plans) == 1
        assert plans[0].source is weird and plans[0].target is cool

    def test_max_steals_per_tick_caps_the_pass(self):
        policy = WorkStealingPolicy(max_steals_per_tick=3)
        hot = StubNode(0, queued=50, idle=0)
        cool = StubNode(1, queued=0, idle=10)
        assert len(policy.plan([hot, cool], now=0.0)) == 3

    def test_draining_node_is_emptied_regardless_of_appetite(self):
        policy = WorkStealingPolicy()
        draining = StubNode(0, queued=4, idle=0, state=NodeState.DRAINING)
        busy = StubNode(1, queued=0, idle=0)  # no idle cores at all
        plans = policy.plan([draining, busy], now=0.0)
        assert len(plans) == 4
        assert all(p.source is draining and p.target is busy for p in plans)

    def test_drain_rescue_prefers_idle_over_saturated_nodes(self):
        """An empty queue on a saturated node must not beat a truly idle one."""
        policy = WorkStealingPolicy()
        saturated = StubNode(0, queued=0, idle=0, inflight=5, capacity=5.0)
        idle = StubNode(1, queued=0, idle=2, inflight=0, capacity=5.0)
        draining = StubNode(2, queued=3, idle=0, state=NodeState.DRAINING)
        plans = policy.plan([saturated, idle, draining], now=0.0)
        assert len(plans) == 3
        assert all(p.target is idle for p in plans)

    def test_drain_rescue_consumes_phase_two_appetite(self):
        """Rescue tasks fill a thief's idle cores; phase 2 must not over-top."""
        policy = WorkStealingPolicy()
        thief = StubNode(0, queued=0, idle=2, inflight=0)
        hot = StubNode(1, queued=4, idle=0)
        draining = StubNode(2, queued=2, idle=0, state=NodeState.DRAINING)
        plans = policy.plan([thief, hot, draining], now=0.0)
        # Both rescue tasks land on the thief and exhaust its two idle
        # cores, so nothing is stolen from the merely-hot node this tick.
        assert len(plans) == 2
        assert all(p.source is draining for p in plans)

    def test_no_active_nodes_no_plans(self):
        draining = StubNode(0, queued=4, idle=0, state=NodeState.DRAINING)
        assert WorkStealingPolicy().plan([draining], now=0.0) == []

    def test_plan_is_deterministic(self):
        policy = WorkStealingPolicy()
        nodes = [
            StubNode(0, queued=5, idle=0),
            StubNode(1, queued=0, idle=2),
            StubNode(2, queued=0, idle=2),
        ]
        first = [(p.task.task_id, p.source.node_id, p.target.node_id)
                 for p in policy.plan(nodes, now=0.0)]
        second = [(p.task.task_id, p.source.node_id, p.target.node_id)
                  for p in policy.plan(nodes, now=0.0)]
        assert first == second


class TestStealSurfaces:
    """Every per-node scheduler exposes its queued, never-run tasks."""

    @pytest.mark.parametrize("scheduler_cls", [
        FIFOScheduler, SJFScheduler, SRTFScheduler, EDFScheduler,
    ])
    def test_queue_backed_schedulers_expose_and_remove(self, scheduler_cls):
        scheduler = scheduler_cls()
        tasks = make_tasks([(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)])
        # Queue directly (no simulator): arrival paths need a machine.
        for task in tasks:
            if hasattr(scheduler, "push"):
                scheduler.push(task)
            else:
                scheduler._push(task)
        stealable = scheduler.stealable_tasks()
        assert sorted(t.task_id for t in stealable) == [0, 1, 2]
        victim = stealable[-1]
        assert scheduler.remove_queued_task(victim)
        assert victim not in scheduler.stealable_tasks()
        assert not scheduler.remove_queued_task(victim)  # already gone
        # The queue still serves the remaining tasks in policy order.
        assert scheduler.queue_length == 2

    def test_removal_matches_identity_not_equality(self):
        scheduler = FIFOScheduler()
        task = make_tasks([(0.0, 1.0)])[0]
        twin = make_tasks([(0.0, 1.0)])[0]  # equal fields, different object
        scheduler.push(task)
        assert not scheduler.remove_queued_task(twin)
        assert scheduler.remove_queued_task(task)

    def test_base_scheduler_defaults_to_no_steal_surface(self):
        from repro.schedulers.cfs import CFSScheduler

        scheduler = CFSScheduler()
        assert scheduler.stealable_tasks() == []
        assert not scheduler.remove_queued_task(make_tasks([(0.0, 1.0)])[0])


class TestSimulatorIntegration:
    def test_stealing_halves_a_hot_spot(self):
        """All tasks hash to one 1-core node; stealing must split them."""
        tasks = pinned_tasks([(0.0, 1.0)] * 10)
        result = simulate_cluster(tasks, config=hot_spot_config())
        assert result.completion_ratio == 1.0
        counts = result.tasks_per_node()
        assert counts[0] == counts[1] == 5
        assert result.tasks_migrated == 5
        # Without migration the same workload serialises on one node.
        baseline = simulate_cluster(
            pinned_tasks([(0.0, 1.0)] * 10),
            config=hot_spot_config(migration=None),
        )
        assert result.simulated_time < baseline.simulated_time / 1.5

    def test_running_tasks_never_move(self):
        tasks = pinned_tasks([(0.0, 1.0), (0.0, 1.0)])
        result = simulate_cluster(tasks, config=hot_spot_config())
        assert result.tasks_migrated == 1
        # The first task ran where it was dispatched; only the queued one moved.
        migrated = result.migrated_tasks()
        assert len(migrated) == 1
        assert migrated[0].metadata["node_migrations"] == 1

    def test_migration_delay_is_paid(self):
        """The stolen task cannot start before tick + transfer delay."""
        config = hot_spot_config(
            migration_kwargs={"interval": 0.05, "delay": 0.5}
        )
        tasks = pinned_tasks([(0.0, 1.0), (0.0, 1.0)])
        result = simulate_cluster(tasks, config=config)
        stolen = result.migrated_tasks()[0]
        assert stolen.first_run_time >= 0.55 - 1e-9
        # And it is still faster than waiting behind the running task.
        assert stolen.completion_time < 2.0

    def test_migration_series_recorded(self):
        result = simulate_cluster(
            pinned_tasks([(0.0, 0.5)] * 8), config=hot_spot_config()
        )
        migrations = result.series_values("cluster.migrations")
        assert migrations
        assert migrations[-1].value == result.tasks_migrated
        depth_series = [
            name for name in result.series if name.endswith("queue_depth")
        ]
        assert len(depth_series) == 2  # one per node

    def test_node_stats_track_steals(self):
        result = simulate_cluster(
            pinned_tasks([(0.0, 1.0)] * 10), config=hot_spot_config()
        )
        stolen_away = sum(s["stolen_in"] for s in result.node_stats.values())
        assert stolen_away == result.tasks_migrated
        assert sum(result.migrations_per_node().values()) == result.tasks_migrated

    def test_heterogeneous_stealing_prefers_fast_nodes(self):
        """Idle big cores drain a little node's hot queue."""
        config = ClusterConfig(
            node_specs=(
                NodeSpec(cores=1, speed_factor=1.0),
                NodeSpec(cores=4, speed_factor=2.0),
            ),
            scheduler="fifo",
            dispatcher="consistent_hash",
            migration="work_stealing",
            migration_kwargs={"interval": 0.05, "delay": 0.001},
        )
        tasks = pinned_tasks([(0.0, 1.0)] * 12)
        result = simulate_cluster(tasks, config=config)
        assert result.completion_ratio == 1.0
        assert result.tasks_migrated > 0
        counts = result.tasks_per_node()
        hot_node = max(counts, key=counts.get)
        assert counts[hot_node] >= counts[min(counts, key=counts.get)]

    def test_deterministic_with_migration(self):
        def run():
            tasks = pinned_tasks(
                [(i * 0.05, 0.7) for i in range(30)], function_id=None
            )
            for task in tasks:
                task.metadata["function_id"] = f"fn-{task.task_id % 3}"
            return simulate_cluster(tasks, config=hot_spot_config())

        first, second = run(), run()
        signature = lambda r: [
            (t.task_id, t.completion_time, t.metadata.get("node_id"),
             t.metadata.get("node_migrations", 0))
            for t in r.tasks
        ]
        assert signature(first) == signature(second)
        assert first.tasks_migrated == second.tasks_migrated

    def test_custom_policy_object_accepted(self):
        class NoopPolicy(MigrationPolicy):
            name = "noop"

            def plan(self, nodes, now):
                return []

        result = simulate_cluster(
            pinned_tasks([(0.0, 0.5)] * 4),
            config=hot_spot_config(migration=None),
            migration_policy=NoopPolicy(),
        )
        assert result.completion_ratio == 1.0
        assert result.tasks_migrated == 0
        assert result.migration_policy_name == "noop"

    def test_mid_flight_target_loss_round_trip_is_not_a_migration(self):
        """If the thief leaves mid-transfer and only the source remains,
        the task returns home and the migration counters stay untouched."""
        config = hot_spot_config(
            migration_kwargs={"interval": 0.05, "delay": 0.5}
        )
        cluster = ClusterSimulator(config=config)
        tasks = pinned_tasks([(0.0, 1.0), (0.0, 1.0)])
        cluster.submit(tasks)
        thief = None

        def drain_thief():
            nonlocal thief
            # The idle node stole one task at the 0.05 tick; it is still in
            # flight (0.5s transfer), so the thief has no inflight work yet.
            thief = min(cluster.nodes, key=lambda n: n.inflight)
            cluster.drain_node(thief)

        cluster.events.push(0.1, drain_thief)
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert thief.state is NodeState.RETIRED
        # The round trip was voided: no migration recorded anywhere.
        assert result.tasks_migrated == 0
        assert sum(result.migrations_per_node().values()) == 0
        assert all(s["stolen_away"] == 0 for s in result.node_stats.values())
        assert result.migrated_tasks() == []

    def test_mid_flight_landing_on_booting_fleet_voids_the_steal(self):
        """If every active node is gone mid-transfer but a node is booting,
        the task waits for the boot and no migration is recorded."""
        config = hot_spot_config(
            migration_kwargs={"interval": 0.05, "delay": 0.5},
            node_boot_time=5.0,
        )
        cluster = ClusterSimulator(config=config)
        cluster.submit(pinned_tasks([(0.0, 1.0), (0.0, 1.0)]))

        def gut_the_fleet():
            # The steal is in flight (until 0.55): retire the idle thief,
            # drain the source, and leave only a slow-booting replacement.
            for node in list(cluster.nodes):
                cluster.drain_node(node)
            cluster.add_node(booting=True)

        cluster.events.push(0.2, gut_the_fleet)
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert result.tasks_migrated == 0
        assert all(s["stolen_away"] == 0 for s in result.node_stats.values())
        assert all(s["stolen_in"] == 0 for s in result.node_stats.values())
        # The parked task only ran once the replacement booted.
        late = max(t.first_run_time for t in result.finished_tasks)
        assert late >= 5.0

    def test_stale_plan_for_started_task_is_dropped(self):
        """A plan whose task started between planning and execution is a no-op."""
        cluster = ClusterSimulator(config=hot_spot_config())
        task = pinned_tasks([(0.0, 1.0)])[0]
        cluster.submit([task])
        node = cluster.nodes[0]
        # Forge a plan for a task that is not queued anywhere.
        ghost = Migration(task=task, source=node, target=cluster.nodes[1])
        assert not cluster._execute_migration(ghost)
        assert cluster.tasks_migrated == 0


class TestDrainRescue:
    def test_draining_node_sheds_queue_via_stealing(self):
        """Scale-down must not strand queued tasks behind a retiring node."""
        cluster = ClusterSimulator(config=hot_spot_config())
        tasks = pinned_tasks([(0.0, 1.0)] * 6)
        cluster.submit(tasks)
        hot = None

        def drain_hot():
            nonlocal hot
            hot = max(cluster.nodes, key=lambda n: n.inflight)
            cluster.drain_node(hot)

        cluster.events.push(0.5, drain_hot)
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert hot.tasks_stolen_away > 0
        assert hot.state is NodeState.RETIRED
        # The node retired as soon as its running task finished — it never
        # worked through the stolen backlog (1s task, queue of 5).
        assert hot.retired_at == pytest.approx(1.0, abs=0.01)

    def test_drain_without_peers_still_completes(self):
        """With nobody to steal, a draining node finishes its own backlog."""
        cluster = ClusterSimulator(
            config=hot_spot_config(num_nodes=1, dispatcher="round_robin")
        )
        cluster.submit(make_tasks([(0.0, 0.5)] * 4))
        cluster.events.push(0.1, lambda: cluster.drain_node(cluster.nodes[0]))
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert cluster.nodes[0].state is NodeState.RETIRED

    def test_stranded_work_terminates_with_incomplete_result(self):
        """A fully retired fleet must end the run, not tick forever.

        Regression: the migration tick used to re-arm whenever unfinished
        work remained, so waiting tasks with no surviving node turned
        ``run()`` into an infinite loop.
        """
        cluster = ClusterSimulator(
            config=hot_spot_config(num_nodes=1, dispatcher="round_robin")
        )
        cluster.drain_node(cluster.nodes[0])  # idle: retires immediately
        booting = cluster.add_node(booting=True)
        cluster.submit(make_tasks([(0.0, 0.5)]))  # waits for the boot
        # Kill the booting node before it comes up: the task is stranded.
        cluster.events.push(0.01, lambda: cluster.drain_node(booting))
        result = cluster.run()
        assert result.completion_ratio == 0.0
        assert all(n.state is NodeState.RETIRED for n in cluster.nodes)
