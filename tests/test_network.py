"""Network delay model: NetworkSpec, per-node ingress queues, probe cost.

The tentpole contract: with the default zero-RTT spec the cluster engine is
bit-identical to instantaneous dispatch (no ingress events at all); with a
non-zero RTT every dispatched task crosses the target node's ingress queue —
counted by load signals, landing on the scheduler after the wire delay —
and load-probing dispatchers additionally pay the probe round trip.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    NetworkSpec,
    NodeSpec,
    NodeState,
    simulate_cluster,
)
from repro.cluster.dispatchers import bound_work, normalized_load
from repro.scenario import Scenario, Workload
from repro.simulation.task import make_tasks


def network_config(rtt, **overrides) -> ClusterConfig:
    defaults = dict(
        num_nodes=2,
        cores_per_node=2,
        scheduler="fifo",
        dispatcher="jsq",
        network=NetworkSpec(rtt=rtt),
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestNetworkSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkSpec(rtt=-0.1)
        with pytest.raises(ValueError):
            NetworkSpec(probe_rtts=-1.0)

    def test_dispatch_delay_math(self):
        spec = NetworkSpec(rtt=0.2)
        # Every task pays the one-way trip; probing policies one extra RTT.
        assert spec.dispatch_delay(0.2, probes_load=False) == pytest.approx(0.1)
        assert spec.dispatch_delay(0.2, probes_load=True) == pytest.approx(0.3)
        free_probe = NetworkSpec(rtt=0.2, probe_rtts=0.0)
        assert free_probe.dispatch_delay(0.2, probes_load=True) == pytest.approx(0.1)

    def test_roundtrip_omits_defaults(self):
        assert NetworkSpec().to_dict() == {}
        spec = NetworkSpec(rtt=0.25, probe_rtts=2.0)
        assert NetworkSpec.from_dict(spec.to_dict()) == spec

    def test_node_spec_rtt_validated_and_serialised(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=4, rtt=-1.0)
        spec = NodeSpec(cores=4, rtt=0.05)
        assert NodeSpec.from_dict(spec.to_dict()) == spec
        assert "rtt" not in NodeSpec(cores=4).to_dict()

    def test_effective_rtt_prefers_spec_override(self):
        config = ClusterConfig(
            node_specs=(NodeSpec(cores=4, rtt=0.5), NodeSpec(cores=4)),
            network=NetworkSpec(rtt=0.1),
        )
        local, remote = config.expanded_specs()
        assert config.effective_rtt(local) == 0.5
        assert config.effective_rtt(remote) == 0.1
        assert config.effective_rtt(None) == 0.1

    def test_cluster_config_rejects_plain_dict_network(self):
        with pytest.raises(TypeError):
            ClusterConfig(network={"rtt": 0.1})

    def test_with_network_copy(self):
        config = ClusterConfig().with_network(rtt=0.3)
        assert config.network == NetworkSpec(rtt=0.3)


class TestZeroRttEquivalence:
    """rtt=0 must take the exact instantaneous pre-network code path."""

    def test_no_ingress_at_zero_rtt(self):
        result = simulate_cluster(
            make_tasks([(i * 0.1, 0.4) for i in range(10)]),
            config=network_config(rtt=0.0),
        )
        assert result.completion_ratio == 1.0
        assert result.tasks_ingressed() == 0
        assert result.mean_ingress_wait() == 0.0
        for task in result.finished_tasks:
            assert "ingress_wait" not in task.metadata

    def test_zero_rtt_bit_identical_to_default_config(self):
        specs = [(i * 0.07, 0.3 + (i % 3) * 0.2) for i in range(24)]
        with_network = simulate_cluster(
            make_tasks(specs), config=network_config(rtt=0.0)
        )
        without = simulate_cluster(
            make_tasks(specs),
            config=ClusterConfig(
                num_nodes=2, cores_per_node=2, scheduler="fifo", dispatcher="jsq"
            ),
        )
        assert with_network.summary().as_dict() == without.summary().as_dict()
        assert with_network.events_processed == without.events_processed


class TestIngressQueues:
    def test_every_task_pays_the_wire_delay(self):
        # Sparse arrivals on an idle fleet: response time is exactly the
        # jsq wire delay (one-way + probe RTT = 1.5 x rtt).
        result = simulate_cluster(
            make_tasks([(i * 2.0, 0.1) for i in range(6)]),
            config=network_config(rtt=0.2),
        )
        assert result.completion_ratio == 1.0
        assert result.tasks_ingressed() == 6
        for task in result.finished_tasks:
            assert task.metadata["ingress_wait"] == pytest.approx(0.3)
            assert task.response_time == pytest.approx(0.3)
        assert result.mean_ingress_wait() == pytest.approx(0.3)

    def test_locality_pays_only_the_one_way_trip(self):
        result = simulate_cluster(
            make_tasks([(i * 2.0, 0.1) for i in range(6)]),
            config=network_config(rtt=0.2, dispatcher="consistent_hash"),
        )
        for task in result.finished_tasks:
            assert task.metadata["ingress_wait"] == pytest.approx(0.1)

    def test_node_stats_count_ingress(self):
        result = simulate_cluster(
            make_tasks([(i * 0.5, 0.1) for i in range(8)]),
            config=network_config(rtt=0.1),
        )
        ingressed = sum(s["ingressed"] for s in result.node_stats.values())
        waited = sum(s["ingress_wait_total"] for s in result.node_stats.values())
        assert ingressed == 8
        assert waited == pytest.approx(8 * 0.15)

    def test_jsq_counts_ingress_pending_work(self):
        """Regression guard: a simultaneous burst must spread, not herd.

        While tasks are on the wire the landing node's ``inflight`` is still
        zero; if queue-depth signals ignored the ingress state every arrival
        in that window would see the same "shortest" queue and JSQ would
        herd the whole burst onto node 0.
        """
        result = simulate_cluster(
            make_tasks([(0.0, 1.0) for _ in range(8)]),
            config=network_config(rtt=0.2, num_nodes=4, cores_per_node=1),
        )
        counts = result.tasks_per_node()
        assert all(count == 2 for count in counts.values())

    def test_least_loaded_counts_ingress_pending_work(self):
        """Same herding regression for the busy-core signal: during the
        wire window no core is busy yet, so without the ingress term every
        pick of a simultaneous burst resolves to node 0."""
        result = simulate_cluster(
            make_tasks([(0.0, 1.0) for _ in range(8)]),
            config=network_config(
                rtt=0.2, num_nodes=4, cores_per_node=1, dispatcher="least_loaded"
            ),
        )
        counts = result.tasks_per_node()
        assert all(count == 2 for count in counts.values())

    def test_bound_work_tolerates_surfaces_without_ingress(self):
        class BareNode:
            node_id = 0
            inflight = 3
            capacity = 2.0

        assert bound_work(BareNode()) == 3
        assert normalized_load(BareNode()) == pytest.approx(1.5)

    def test_per_spec_rtt_override(self):
        """A same-rack node spec dispatches faster than the fleet default."""
        config = ClusterConfig(
            node_specs=(
                NodeSpec(cores=1, rtt=0.0, label="local"),
                NodeSpec(cores=1, label="remote"),
            ),
            scheduler="fifo",
            dispatcher="round_robin",
            network=NetworkSpec(rtt=0.4),
        )
        result = simulate_cluster(
            make_tasks([(0.0, 0.1), (0.0, 0.1)]), config=config
        )
        by_node = {
            task.metadata["node_id"]: task for task in result.finished_tasks
        }
        assert by_node[0].response_time == pytest.approx(0.0)  # local, rtt 0
        assert by_node[1].response_time == pytest.approx(0.2)  # one-way trip

    def test_ingress_lands_on_draining_node(self):
        """A task on the wire was committed at dispatch: the node must accept
        it mid-drain and only retire after it ran."""
        cluster = ClusterSimulator(
            config=network_config(rtt=0.2, num_nodes=2, cores_per_node=1)
        )
        cluster.submit(make_tasks([(0.0, 0.5), (0.0, 0.5)]))
        victim = cluster.nodes[1]
        # Drain strictly between dispatch (t=0) and landing (t=0.3).
        cluster.events.push(0.1, lambda: cluster.drain_node(victim))
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert victim.state is NodeState.RETIRED
        assert victim.tasks_completed == 1
        # Retired only after the wire-delayed task landed and finished.
        assert victim.retired_at == pytest.approx(0.8)

    def test_retire_with_ingress_pending_rejected(self):
        """The invariant has teeth at its enforcement point: a node with
        work on the wire cannot retire, inflight or not."""
        cluster = ClusterSimulator(config=network_config(rtt=0.2))
        node = cluster.nodes[0]
        node.ingress = 1
        node.start_draining()
        with pytest.raises(RuntimeError, match="ingress queue"):
            node.retire(now=0.0)

    def test_scale_down_victim_counts_ingress_work(self):
        """The autoscaler drains the least *committed* node: work on the
        wire toward a node counts like delivered work."""
        from repro.cluster import AutoscalerConfig, ReactiveAutoscaler

        autoscaler = ReactiveAutoscaler(
            # Fleet load will be (3 ingress + 1 inflight) / 4 cores = 1.0.
            AutoscalerConfig(min_nodes=1, max_nodes=4, scale_down_load=1.2)
        )
        cluster = ClusterSimulator(
            config=network_config(rtt=0.2, num_nodes=2), autoscaler=autoscaler
        )
        # Node 0 has three tasks on the wire, node 1 one delivered task:
        # the victim must be node 1 (1 committed) not node 0 (3 committed).
        cluster.nodes[0].ingress = 3
        cluster.nodes[1].inflight = 1
        autoscaler.on_tick(now=10.0)
        assert autoscaler.scale_downs == 1
        assert cluster.nodes[1].state is NodeState.DRAINING
        assert cluster.nodes[0].state is NodeState.ACTIVE

    def test_draining_fleet_with_ingress_completes_without_error(self):
        """Even the *whole* fleet draining with work on the wire is legal:
        every ingress task force-lands on its draining target."""
        cluster = ClusterSimulator(
            config=network_config(rtt=0.2, num_nodes=2, cores_per_node=1)
        )
        cluster.submit(make_tasks([(0.0, 0.4), (0.0, 0.4)]))
        def drain_all():
            for node in list(cluster.active_nodes()):
                cluster.drain_node(node)
        cluster.events.push(0.1, drain_all)
        result = cluster.run()
        assert result.completion_ratio == 1.0
        assert all(n.state is NodeState.RETIRED for n in cluster.nodes)


class TestScenarioNetwork:
    def test_cluster_roundtrip_with_network(self):
        scenario = Scenario(
            workload=Workload("ten_minute", scale=0.02),
            num_nodes=2,
            scheduler="fifo",
            dispatcher="jsq",
            network=NetworkSpec(rtt=0.25),
        )
        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt == scenario
        assert rebuilt.build_cluster_config().network == NetworkSpec(rtt=0.25)

    def test_network_accepts_plain_dict(self):
        scenario = Scenario(
            workload=Workload("ten_minute", scale=0.02),
            num_nodes=2,
            network={"rtt": 0.1, "probe_rtts": 0.0},
        )
        assert scenario.network == NetworkSpec(rtt=0.1, probe_rtts=0.0)

    def test_default_network_roundtrip_omitted(self):
        scenario = Scenario(
            workload=Workload("ten_minute", scale=0.02), num_nodes=2
        )
        assert "network" not in scenario.to_dict()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_single_machine_rejects_network(self):
        with pytest.raises(ValueError, match="cluster fields"):
            Scenario(
                workload=Workload("two_minute"), network=NetworkSpec(rtt=0.1)
            )


class TestLocalityVsRtt:
    """The acceptance claim, at reduced scale: once the RTT is non-zero,
    blind consistent hashing beats probe-paying JSQ on p99."""

    def test_consistent_hash_beats_jsq_under_rtt(self):
        from repro.experiments.cluster_scaling import run_locality_rtt_sweep

        results = run_locality_rtt_sweep(scale=0.02)
        p99 = {
            label: result.summary().p99_turnaround
            for label, result in results.items()
        }
        # Oracle-instant dispatch: JSQ cannot lose.
        assert p99["jsq_rtt0"] <= p99["consistent_hash_rtt0"]
        # Real RTT: the probe round trip costs JSQ the tail.
        assert p99["consistent_hash_rtt"] < p99["jsq_rtt"]
        # And the wire accounting explains it: hashing's mean ingress wait
        # is the one-way trip, JSQ's adds the probe RTT on top.
        assert results["consistent_hash_rtt"].mean_ingress_wait() < (
            results["jsq_rtt"].mean_ingress_wait()
        )
