"""Property-based tests (hypothesis) for core invariants of the substrate.

These check the invariants every figure implicitly relies on:

* conservation of work — no scheduler can finish a task with less CPU time
  than its service demand, and FIFO bills exactly the service demand;
* metric identities — turnaround = response + execution, all non-negative;
* work conservation of the simulator — a busy core never idles while work is
  queued under a work-conserving policy (checked via makespan bounds);
* adaptive-limit bounds — the sliding-window percentile always lies between
  the window's minimum and maximum;
* cost monotonicity — more memory or more billed time never costs less.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.time_limit import AdaptivePercentileTimeLimit
from repro.cost.pricing import price_per_ms
from repro.schedulers.cfs import CFSScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.srtf import SRTFScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.context_switch import ContextSwitchModel
from repro.simulation.engine import simulate
from repro.simulation.task import Task

# Workload strategy: small batches of (arrival, service) pairs.
task_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.01, max_value=3.0),
    ),
    min_size=1,
    max_size=25,
)

SIM_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_tasks(specs):
    return [
        Task(task_id=i, arrival_time=round(a, 4), service_time=round(s, 4))
        for i, (a, s) in enumerate(specs)
    ]


def run(scheduler, specs, cores=2):
    config = SimulationConfig(num_cores=cores, record_utilization=False)
    return simulate(scheduler, build_tasks(specs), config=config)


@given(specs=task_specs, cores=st.integers(min_value=1, max_value=4))
@SIM_SETTINGS
def test_fifo_execution_equals_service_and_everything_finishes(specs, cores):
    result = run(FIFOScheduler(), specs, cores)
    assert result.completion_ratio == 1.0
    for task in result.finished_tasks:
        assert task.execution_time is not None
        assert math.isclose(task.execution_time, task.service_time, rel_tol=1e-6)
        assert task.preemptions == 0


@given(specs=task_specs, cores=st.integers(min_value=1, max_value=4))
@SIM_SETTINGS
def test_metric_identities_hold_for_cfs(specs, cores):
    result = run(CFSScheduler(), specs, cores)
    assert result.completion_ratio == 1.0
    for task in result.finished_tasks:
        assert task.response_time >= -1e-9
        assert task.execution_time >= task.service_time - 1e-6
        assert math.isclose(
            task.turnaround_time,
            task.response_time + task.execution_time,
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
        # Received CPU time can never be less than the demand at completion.
        assert task.cpu_time_received >= task.service_time - 1e-6


@given(specs=task_specs)
@SIM_SETTINGS
def test_srtf_conserves_work(specs):
    result = run(SRTFScheduler(), specs, cores=2)
    assert result.completion_ratio == 1.0
    total_service = sum(t.service_time for t in result.finished_tasks)
    total_received = sum(t.cpu_time_received for t in result.finished_tasks)
    # Migration charges may add a little work, but never remove any.
    assert total_received >= total_service - 1e-6


@given(specs=task_specs, cores=st.integers(min_value=1, max_value=4))
@SIM_SETTINGS
def test_makespan_bounded_by_serial_and_ideal_parallel_work(specs, cores):
    result = run(FIFOScheduler(), specs, cores)
    total_service = sum(t.service_time for t in result.finished_tasks)
    last_arrival = max(t.arrival_time for t in result.finished_tasks)
    makespan = max(t.completion_time for t in result.finished_tasks)
    # Work conservation: never slower than running everything serially after
    # the last arrival, never faster than perfect parallelism.
    assert makespan <= last_arrival + total_service + 1e-6
    assert makespan >= total_service / cores - 1e-6


@given(
    durations=st.lists(
        st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=300
    ),
    percentile=st.floats(min_value=1.0, max_value=100.0),
    window=st.integers(min_value=1, max_value=150),
)
def test_adaptive_limit_bounded_by_window_extremes(durations, percentile, window):
    policy = AdaptivePercentileTimeLimit(
        percentile=percentile, window=window, min_observations=1, min_limit=1e-9
    )
    for i, duration in enumerate(durations):
        policy.observe(duration, now=float(i))
    recent = durations[-window:]
    limit = policy.current()
    assert min(recent) - 1e-9 <= limit <= max(recent) + 1e-9


@given(
    memory=st.integers(min_value=64, max_value=10240),
    factor=st.floats(min_value=1.0, max_value=8.0),
)
def test_price_monotone_in_memory(memory, factor):
    assert price_per_ms(memory * factor) >= price_per_ms(memory)


@given(
    nr_running=st.integers(min_value=1, max_value=500),
    switch_cost=st.floats(min_value=0.0, max_value=0.001),
)
def test_context_switch_efficiency_bounded(nr_running, switch_cost):
    model = ContextSwitchModel(switch_cost=switch_cost)
    efficiency = model.efficiency(nr_running)
    assert 0.0 < efficiency <= 1.0
    if nr_running > 1 and switch_cost > 1e-9:
        assert efficiency < 1.0


# ---------------------------------------------------------------------------
# Cluster invariants: dispatch + work stealing on heterogeneous fleets
# ---------------------------------------------------------------------------

from repro.cluster import ClusterConfig, NodeSpec, simulate_cluster  # noqa: E402
from repro.cluster.dispatchers import function_key  # noqa: E402
from repro.cluster.migration import WorkStealingPolicy  # noqa: E402


def _cluster_signature(result):
    return [
        (t.task_id, t.completion_time, t.first_run_time,
         t.metadata.get("node_id"), t.metadata.get("node_migrations", 0))
        for t in result.tasks
    ]


@given(
    specs=task_specs,
    seed=st.integers(min_value=0, max_value=2**16),
    dispatcher=st.sampled_from(
        ["random", "round_robin", "least_loaded", "jsq", "power_of_two",
         "consistent_hash"]
    ),
)
@SIM_SETTINGS
def test_cluster_runs_are_bit_identical_and_exactly_once(specs, seed, dispatcher):
    """Same seed + same workload ⇒ identical runs; every task finishes once."""
    config = ClusterConfig(
        node_specs=(NodeSpec(cores=2), NodeSpec(cores=1, speed_factor=2.0)),
        scheduler="fifo",
        dispatcher=dispatcher,
        migration="work_stealing",
        migration_kwargs={"interval": 0.1, "delay": 0.001},
        seed=seed,
    )
    first = simulate_cluster(build_tasks(specs), config=config)
    second = simulate_cluster(build_tasks(specs), config=config)
    assert _cluster_signature(first) == _cluster_signature(second)
    assert first.completion_ratio == 1.0
    finished_ids = sorted(
        t.task_id
        for node_result in first.node_results.values()
        for t in node_result.finished_tasks
    )
    # Exactly once: the per-node results partition the task set.
    assert finished_ids == sorted(t.task_id for t in first.tasks)


@given(specs=task_specs)
@SIM_SETTINGS
def test_function_key_unique_for_anonymous_tasks(specs):
    """Tasks with no function id and no name never share a routing key."""
    tasks = build_tasks(specs)
    for task in tasks:
        task.metadata["function_id"] = ""  # present but empty: must not collide
    keys = [function_key(t) for t in tasks]
    assert len(set(keys)) == len(tasks)


@given(
    queued=st.lists(st.integers(min_value=0, max_value=12), min_size=2, max_size=6),
    idle=st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=6),
)
@SIM_SETTINGS
def test_work_stealing_plan_invariants(queued, idle):
    """Plans only move queued tasks, never the same task twice, within caps."""
    from test_migration import StubNode

    nodes = [
        StubNode(i, queued=q, idle=j)
        for i, (q, j) in enumerate(zip(queued, idle))
    ]
    policy = WorkStealingPolicy(max_steals_per_tick=8)
    plans = policy.plan(nodes, now=0.0)
    assert len(plans) <= 8
    moved = [p.task.task_id for p in plans]
    assert len(moved) == len(set(moved))
    total_appetite = sum(j for j in idle)
    assert len(plans) <= total_appetite
    for plan in plans:
        assert plan.target.is_active
        assert plan.task.first_run_time is None
