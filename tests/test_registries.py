"""Error-path coverage shared by the scheduler, dispatcher and migration
registries.

All registries follow the same contract: case-insensitive names, duplicate
registration rejected unless ``overwrite=True``, unknown names raise KeyError
listing the alternatives.
"""

import pytest

from repro.cluster.dispatchers import Dispatcher
from repro.cluster.migration import MigrationPolicy
from repro.cluster.registry import (
    available_dispatchers,
    available_migration_policies,
    create_dispatcher,
    create_migration_policy,
    register_dispatcher,
    register_migration_policy,
)
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.registry import (
    available_schedulers,
    create_scheduler,
    register_scheduler,
)


class _ProbeDispatcher(Dispatcher):
    name = "probe"

    def select_node(self, task, nodes):
        return nodes[0]


class _ProbeMigrationPolicy(MigrationPolicy):
    name = "probe-migration"

    def plan(self, nodes, now):
        return []


REGISTRIES = {
    "scheduler": (
        register_scheduler,
        create_scheduler,
        available_schedulers,
        FIFOScheduler,
    ),
    "dispatcher": (
        register_dispatcher,
        create_dispatcher,
        available_dispatchers,
        _ProbeDispatcher,
    ),
    "migration": (
        register_migration_policy,
        create_migration_policy,
        available_migration_policies,
        _ProbeMigrationPolicy,
    ),
}


@pytest.fixture(params=sorted(REGISTRIES))
def registry(request):
    return REGISTRIES[request.param]


class TestRegistryContract:
    def test_duplicate_registration_rejected(self, registry):
        register, _, available, factory = registry
        existing = available()[0]
        with pytest.raises(ValueError, match="already registered"):
            register(existing, factory)

    def test_overwrite_flag_allows_replacement(self, registry):
        register, create, available, factory = registry
        existing = available()[0]
        original = create(existing)
        try:
            register(existing, factory, overwrite=True)
            assert isinstance(create(existing), factory)
        finally:
            register(existing, type(original), overwrite=True)

    def test_unknown_name_rejected_with_alternatives(self, registry):
        _, create, available, _ = registry
        with pytest.raises(KeyError, match="available"):
            create("definitely-not-registered")
        # The error message names every real alternative.
        with pytest.raises(KeyError, match=available()[0]):
            create("definitely-not-registered")

    def test_names_are_case_insensitive(self, registry):
        _, create, available, _ = registry
        name = available()[0]
        assert type(create(name.upper())) is type(create(name))

    def test_available_sorted_and_nonempty(self, registry):
        _, _, available, _ = registry
        names = available()
        assert names
        assert names == sorted(names)


class TestBuiltinCoverage:
    def test_builtin_schedulers_present(self):
        expected = {"fifo", "fifo_preempt", "cfs", "round_robin", "edf", "sjf",
                    "srtf", "shinjuku"}
        assert expected.issubset(set(available_schedulers()))

    def test_builtin_dispatchers_present(self):
        expected = {"random", "round_robin", "least_loaded", "jsq",
                    "power_of_two", "consistent_hash"}
        assert expected.issubset(set(available_dispatchers()))

    def test_builtin_migration_policies_present(self):
        assert "work_stealing" in available_migration_policies()
