"""Tests for utilization monitoring and the core-rightsizing controller."""

import pytest

from repro.core.config import CFS_GROUP, FIFO_GROUP, HybridConfig
from repro.core.hybrid import HybridScheduler
from repro.core.rightsizing import RightsizingController
from repro.monitoring.monitor import GroupUtilizationMonitor
from repro.monitoring.sampler import UtilizationSampler
from repro.monitoring.shared_memory import UtilizationStore
from repro.simulation.config import SimulationConfig
from repro.simulation.cpu import Core
from repro.simulation.engine import simulate
from repro.simulation.machine import Machine
from tests.conftest import make_task, make_tasks


class TestUtilizationStore:
    def test_write_and_latest(self):
        store = UtilizationStore()
        store.write(0, time=1.0, utilization=0.7)
        store.write(0, time=2.0, utilization=0.9)
        assert store.latest(0).utilization == 0.9
        assert store.latest(5) is None
        assert store.core_ids() == [0]

    def test_values_clamped(self):
        store = UtilizationStore()
        store.write(0, 1.0, 1.5)
        store.write(0, 2.0, -0.5)
        history = store.history(0)
        assert history[0].utilization == 1.0
        assert history[1].utilization == 0.0

    def test_window_average(self):
        store = UtilizationStore()
        store.write(0, 1.0, 0.2)
        store.write(0, 2.0, 0.4)
        store.write(0, 3.0, 0.6)
        assert store.average_since(0, since=1.5) == pytest.approx(0.5)
        # No sample after `since` -> falls back to the latest value.
        assert store.average_since(0, since=10.0) == pytest.approx(0.6)

    def test_group_average_missing_core_counts_idle(self):
        store = UtilizationStore()
        store.write(0, 1.0, 1.0)
        assert store.group_average_since([0, 1], since=0.0) == pytest.approx(0.5)

    def test_capacity_bounds_history(self):
        store = UtilizationStore(capacity_per_core=2)
        for i in range(5):
            store.write(0, float(i), 0.1 * i)
        assert len(store.history(0)) == 2


class TestSampler:
    def test_samples_busy_fraction(self):
        store = UtilizationStore()
        sampler = UtilizationSampler(store)
        core = Core(core_id=0, group="fifo")
        sampler.prime([core], now=0.0)
        core.add_task(make_task(service=0.5), 0.0)
        core.finish_ready_tasks(0.5)
        values = sampler.sample([core], now=1.0)
        assert values[0] == pytest.approx(0.5)
        assert store.latest(0).utilization == pytest.approx(0.5)

    def test_first_sample_primes_only(self):
        sampler = UtilizationSampler()
        core = Core(core_id=0, group="fifo")
        assert sampler.sample([core], now=1.0) == {}


class TestMonitor:
    def test_group_utilization_and_imbalance(self):
        store = UtilizationStore()
        store.write(0, 1.0, 1.0)
        store.write(1, 1.0, 0.2)
        monitor = GroupUtilizationMonitor(store, window=5.0)
        assert monitor.group_utilization([0], now=2.0) == pytest.approx(1.0)
        assert monitor.imbalance([0], [1], now=2.0) == pytest.approx(0.8)
        groups = monitor.all_groups({"fifo": [0], "cfs": [1]}, now=2.0)
        assert groups["fifo"] > groups["cfs"]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            GroupUtilizationMonitor(UtilizationStore(), window=0.0)


def _controller(fifo_util, cfs_util, **config_kwargs):
    config = HybridConfig(fifo_cores=2, cfs_cores=2, **config_kwargs)
    machine = Machine(SimulationConfig(num_cores=4), groups={FIFO_GROUP: 2, CFS_GROUP: 2})
    store = UtilizationStore()
    for core_id in machine.group(FIFO_GROUP).core_ids:
        store.write(core_id, 1.0, fifo_util)
    for core_id in machine.group(CFS_GROUP).core_ids:
        store.write(core_id, 1.0, cfs_util)
    monitor = GroupUtilizationMonitor(store, window=10.0)
    return RightsizingController(machine, monitor, config), machine


class TestRightsizingController:
    def test_no_decision_when_balanced(self):
        controller, _ = _controller(0.8, 0.8)
        assert controller.evaluate(now=2.0) is None

    def test_moves_core_towards_busy_fifo(self):
        controller, _ = _controller(1.0, 0.2)
        decision = controller.evaluate(now=2.0)
        assert decision is not None
        assert decision.source == CFS_GROUP and decision.target == FIFO_GROUP

    def test_moves_core_towards_busy_cfs(self):
        controller, _ = _controller(0.2, 1.0)
        decision = controller.evaluate(now=2.0)
        assert decision.source == FIFO_GROUP and decision.target == CFS_GROUP

    def test_min_group_size_respected(self):
        controller, machine = _controller(1.0, 0.2, min_group_size=2)
        assert machine.group_size(CFS_GROUP) == 2
        assert controller.evaluate(now=2.0) is None

    def test_cooldown(self):
        controller, _ = _controller(1.0, 0.2, rightsizing_cooldown=5.0)
        decision = controller.evaluate(now=2.0)
        controller.record_migration(2.0, decision, core_id=2)
        assert controller.evaluate(now=3.0) is None
        assert controller.evaluate(now=8.0) is not None
        assert controller.migration_count == 1
        assert controller.migrations_towards(FIFO_GROUP) == 1


class TestRightsizingEndToEnd:
    def test_cores_migrate_towards_loaded_group(self):
        # Only short tasks: the CFS group never receives work, so cores should
        # migrate from CFS to FIFO over time.
        config = HybridConfig(
            fifo_cores=2,
            cfs_cores=2,
            time_limit=5.0,
            rightsizing=True,
            rightsizing_interval=0.2,
            rightsizing_cooldown=0.2,
            rightsizing_threshold=0.3,
            utilization_sample_interval=0.1,
            utilization_window=0.5,
        )
        scheduler = HybridScheduler(config)
        specs = [(0.05 * i, 0.3) for i in range(80)]
        result = simulate(
            scheduler, make_tasks(specs), config=SimulationConfig(num_cores=4)
        )
        assert result.completion_ratio == 1.0
        assert scheduler.rightsizer.migration_count >= 1
        assert scheduler.machine.group_size(FIFO_GROUP) > 2
        series = result.series_values("fifo_cores")
        assert max(p.value for p in series) > 2
