"""Scenario layer tests: serialisation round trips, pipeline equivalence.

The ISSUE-4 acceptance contract: ``Scenario -> dict -> Scenario -> run``
reproduces the direct-config run bit-identically for a single-machine and a
heterogeneous-cluster case, and the columnar metrics of a scenario run match
the golden fixture at 1e-9.
"""

import pytest

from golden_scenarios import TOLERANCE, assert_close, load_golden
from repro.cluster import ClusterConfig, NodeSpec, simulate_cluster
from repro.core.hybrid import HybridScheduler
from repro.cost.cost_model import ClusterCostBreakdown, CostBreakdown
from repro.experiments.common import (
    hybrid_kwargs,
    paper_hybrid_config,
    run_policy,
    two_minute_workload,
)
from repro.scenario import CostSpec, Scenario, Workload, available_workloads, run
from repro.simulation.metrics import TaskMetricsSummary


def roundtrip(scenario: Scenario) -> Scenario:
    return Scenario.from_json(scenario.to_json())


class TestSerialisation:
    def test_single_machine_roundtrip_equality(self):
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.1),
            scheduler="hybrid",
            scheduler_kwargs=hybrid_kwargs(),
            seed=3,
            max_simulated_time=100.0,
        )
        assert roundtrip(scenario) == scenario
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_cluster_roundtrip_equality(self):
        scenario = Scenario(
            workload=Workload("ten_minute", scale=0.05),
            scheduler="fifo",
            node_specs=(
                NodeSpec(cores=24, count=2, label="big"),
                NodeSpec(cores=8, count=4, label="little", price_per_hour=0.1),
            ),
            dispatcher="jsq",
            migration="work_stealing",
            autoscaler={"min_nodes": 2, "max_nodes": 8},
            cost=CostSpec(include_request_fee=True),
        )
        assert roundtrip(scenario) == scenario

    def test_node_specs_accept_plain_dicts(self):
        scenario = Scenario(
            workload=Workload("two_minute"),
            node_specs=({"cores": 4}, {"cores": 8, "count": 2}),
        )
        assert scenario.node_specs == (NodeSpec(cores=4), NodeSpec(cores=8, count=2))

    def test_single_machine_rejects_cluster_fields(self):
        with pytest.raises(ValueError, match="cluster fields"):
            Scenario(workload=Workload("two_minute"), migration="work_stealing")
        with pytest.raises(ValueError, match="cluster fields"):
            # A non-default dispatcher without a fleet shape is a mistake,
            # not a silently ignored knob.
            Scenario(workload=Workload("two_minute"), dispatcher="jsq")
        with pytest.raises(ValueError, match="cluster fields"):
            Scenario(
                workload=Workload("two_minute"),
                dispatcher_kwargs={"normalized": False},
            )

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            Workload("two_minute", scale=0.0)
        with pytest.raises(ValueError):
            Workload("")

    def test_unknown_workload_rejected_at_run(self):
        with pytest.raises(KeyError, match="unknown workload"):
            run(Scenario(workload=Workload("no_such_trace")))

    def test_registry_lists_canonical_workloads(self):
        assert {"two_minute", "ten_minute", "firecracker"} <= set(available_workloads())


class TestPipelineRouting:
    def test_workload_required_without_tasks(self):
        with pytest.raises(ValueError, match="no workload"):
            run(Scenario())

    def test_cluster_rejects_scheduler_instance(self):
        scenario = Scenario(workload=Workload("two_minute", scale=0.05), num_nodes=2)
        with pytest.raises(ValueError, match="instance overrides"):
            run(scenario, scheduler=object())

    def test_single_machine_cost_report(self):
        result = run(Scenario(workload=Workload("two_minute", scale=0.05)))
        assert not result.is_cluster
        assert isinstance(result.cost, CostBreakdown)
        assert result.cost.total > 0
        assert result.scheduler is not None

    def test_cluster_cost_report(self):
        result = run(
            Scenario(workload=Workload("two_minute", scale=0.05), num_nodes=4)
        )
        assert result.is_cluster
        assert isinstance(result.cost, ClusterCostBreakdown)
        assert result.cost.node_hours > 0
        assert result.cost.node_cost > 0
        assert result.cost.total > result.cost.user_cost


class TestSingleMachineEquivalence:
    """Scenario -> dict -> Scenario -> run == the direct instance-based run."""

    def test_fifo_bit_identical(self):
        direct = run_policy(
            __import__("repro.schedulers.fifo", fromlist=["FIFOScheduler"]).FIFOScheduler(),
            two_minute_workload(0.05),
        )
        scenario = roundtrip(
            Scenario(workload=Workload("two_minute", scale=0.05), scheduler="fifo")
        )
        declarative = run(scenario).result
        assert declarative.summary().as_dict() == direct.summary().as_dict()
        assert declarative.total_preemptions() == direct.total_preemptions()

    def test_hybrid_bit_identical(self):
        direct = run_policy(
            HybridScheduler(paper_hybrid_config()), two_minute_workload(0.05)
        )
        scenario = roundtrip(
            Scenario(
                workload=Workload("two_minute", scale=0.05),
                scheduler="hybrid",
                scheduler_kwargs=hybrid_kwargs(),
            )
        )
        declarative = run(scenario).result
        assert declarative.summary().as_dict() == direct.summary().as_dict()


class TestClusterEquivalence:
    def test_heterogeneous_cluster_bit_identical(self):
        specs = (
            NodeSpec(cores=24, count=2, label="big"),
            NodeSpec(cores=8, count=4, label="little"),
        )
        direct = simulate_cluster(
            two_minute_workload(0.1),
            config=ClusterConfig(
                node_specs=specs,
                scheduler="fifo",
                dispatcher="jsq",
                migration="work_stealing",
            ),
        )
        scenario = roundtrip(
            Scenario(
                workload=Workload("two_minute", scale=0.1),
                scheduler="fifo",
                node_specs=specs,
                dispatcher="jsq",
                migration="work_stealing",
            )
        )
        declarative = run(scenario).result
        assert declarative.summary().as_dict() == direct.summary().as_dict()
        assert declarative.tasks_migrated == direct.tasks_migrated
        assert {
            nid: (s["assigned"], s["completed"], s["stolen_in"], s["stolen_away"])
            for nid, s in declarative.node_stats.items()
        } == {
            nid: (s["assigned"], s["completed"], s["stolen_in"], s["stolen_away"])
            for nid, s in direct.node_stats.items()
        }

    def test_scenario_columnar_metrics_match_golden_fixture(self):
        """The golden hetero-stealing metrics, via the scenario pipeline.

        The fixture was captured from the pre-virtual-time engine at
        ``bf121a5`` with list-based metrics; the declarative run's columnar
        summaries must reproduce it within 1e-9.
        """
        golden = load_golden()["hetero_cluster_stealing"]
        scenario = roundtrip(
            Scenario(
                workload=Workload("two_minute", scale=0.1),
                scheduler="fifo",
                node_specs=(
                    NodeSpec(cores=24, count=2, label="big"),
                    NodeSpec(cores=8, count=4, label="little"),
                ),
                dispatcher="jsq",
                migration="work_stealing",
            )
        )
        result = run(scenario).result
        observed = {
            key: float(value)
            for key, value in TaskMetricsSummary.from_columns(
                result.task_columns()
            ).as_dict().items()
        }
        observed["tasks_migrated"] = float(result.tasks_migrated)
        observed["simulated_time"] = float(result.simulated_time)
        for node_id, stats in sorted(result.node_stats.items()):
            observed[f"node{node_id}.assigned"] = float(stats["assigned"])
            observed[f"node{node_id}.completed"] = float(stats["completed"])
            observed[f"node{node_id}.stolen_in"] = float(stats["stolen_in"])
            observed[f"node{node_id}.stolen_away"] = float(stats["stolen_away"])
        assert TOLERANCE == 1e-9
        assert_close("hetero_cluster_stealing(scenario)", golden, observed)
