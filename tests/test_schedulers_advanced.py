"""Behavioural tests for EDF, SJF, SRTF, Shinjuku and the registry."""

import pytest

from repro.schedulers.edf import EDFScheduler
from repro.schedulers.registry import available_schedulers, create_scheduler, register_scheduler
from repro.schedulers.shinjuku import ShinjukuScheduler
from repro.schedulers.sjf import SJFScheduler
from repro.schedulers.srtf import SRTFScheduler
from tests.conftest import make_task, run_small
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


class TestEDF:
    def test_earlier_deadline_runs_first(self):
        scheduler = EDFScheduler()
        tasks = [
            make_task(task_id=0, arrival=0.0, service=1.0, deadline=100.0),
            make_task(task_id=1, arrival=0.0, service=1.0, deadline=1.0),
            make_task(task_id=2, arrival=0.0, service=1.0, deadline=50.0),
        ]
        result = simulate(scheduler, tasks, config=SimulationConfig(num_cores=1))
        order = sorted(result.finished_tasks, key=lambda t: t.completion_time)
        assert [t.task_id for t in order] == [1, 2, 0]

    def test_preempts_later_deadline(self):
        scheduler = EDFScheduler()
        tasks = [
            make_task(task_id=0, arrival=0.0, service=5.0, deadline=100.0),
            make_task(task_id=1, arrival=0.5, service=0.5, deadline=2.0),
        ]
        result = simulate(scheduler, tasks, config=SimulationConfig(num_cores=1))
        urgent = next(t for t in result.finished_tasks if t.task_id == 1)
        assert urgent.completion_time == pytest.approx(1.0, abs=0.01)
        victim = next(t for t in result.finished_tasks if t.task_id == 0)
        assert victim.preemptions >= 1

    def test_implicit_deadline_for_plain_tasks(self):
        scheduler = EDFScheduler(slack_factor=2.0, default_relative_deadline=5.0)
        task = make_task(arrival=1.0, service=1.0)
        assert scheduler.deadline_of(task) == pytest.approx(3.0)
        long_task = make_task(arrival=1.0, service=100.0)
        assert scheduler.deadline_of(long_task) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EDFScheduler(slack_factor=0.0)
        with pytest.raises(ValueError):
            EDFScheduler(default_relative_deadline=0.0)


class TestSJF:
    def test_shortest_waiting_job_runs_first(self):
        result = run_small(
            SJFScheduler(), [(0.0, 5.0), (0.1, 2.0), (0.2, 0.5)], num_cores=1
        )
        short = next(t for t in result.tasks if t.service_time == 0.5)
        medium = next(t for t in result.tasks if t.service_time == 2.0)
        assert short.completion_time < medium.completion_time

    def test_non_preemptive(self):
        result = run_small(SJFScheduler(), [(0.0, 5.0), (0.1, 0.1)], num_cores=1)
        long_task = next(t for t in result.tasks if t.service_time == 5.0)
        assert long_task.preemptions == 0


class TestSRTF:
    def test_short_arrival_preempts_long_running(self):
        result = run_small(SRTFScheduler(), [(0.0, 5.0), (0.5, 0.2)], num_cores=1)
        short = next(t for t in result.tasks if t.service_time == 0.2)
        long_task = next(t for t in result.tasks if t.service_time == 5.0)
        assert short.completion_time == pytest.approx(0.7, abs=0.01)
        assert long_task.preemptions >= 1

    def test_preemption_margin_damps_thrashing(self):
        scheduler = SRTFScheduler(preemption_margin=10.0)
        result = run_small(scheduler, [(0.0, 1.0), (0.1, 0.9)], num_cores=1)
        first = next(t for t in result.tasks if t.task_id == 0)
        assert first.preemptions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SRTFScheduler(preemption_margin=-1.0)


class TestShinjuku:
    def test_small_quantum_bounds_short_task_latency(self):
        shinjuku = run_small(
            ShinjukuScheduler(quantum=0.02), [(0.0, 5.0), (0.0, 0.05)], num_cores=1
        )
        short = next(t for t in shinjuku.tasks if t.service_time == 0.05)
        assert short.turnaround_time < 0.5


class TestRegistry:
    def test_builtins_registered(self):
        names = available_schedulers()
        for expected in ("fifo", "cfs", "round_robin", "edf", "sjf", "srtf", "shinjuku", "hybrid"):
            assert expected in names

    def test_create_by_name_with_kwargs(self):
        scheduler = create_scheduler("fifo_preempt", quantum=0.2)
        assert scheduler.quantum == 0.2

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            create_scheduler("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scheduler("fifo", lambda: None)
