"""Behavioural tests for the baseline schedulers (FIFO, FIFO-100ms, CFS, RR)."""

import pytest

from repro.schedulers.cfs import CFSScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.fifo_preempt import FIFOPreemptScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from tests.conftest import run_small


class TestFIFO:
    def test_runs_in_arrival_order(self):
        result = run_small(FIFOScheduler(), [(0.0, 1.0), (0.1, 1.0), (0.2, 1.0)], num_cores=1)
        tasks = sorted(result.tasks, key=lambda t: t.task_id)
        assert tasks[0].completion_time < tasks[1].completion_time < tasks[2].completion_time

    def test_no_preemptions_ever(self):
        result = run_small(FIFOScheduler(), [(0.0, 0.5)] * 6, num_cores=2)
        assert result.total_preemptions() == 0
        assert all(t.preemptions == 0 for t in result.tasks)

    def test_execution_equals_service(self):
        result = run_small(FIFOScheduler(), [(0.0, 0.5), (0.0, 1.5), (0.0, 2.5)], num_cores=1)
        for task in result.finished_tasks:
            assert task.execution_time == pytest.approx(task.service_time)

    def test_head_of_line_blocking(self):
        # A long task at the head delays the short one behind it.
        result = run_small(FIFOScheduler(), [(0.0, 10.0), (0.1, 0.1)], num_cores=1)
        short = next(t for t in result.tasks if t.service_time == 0.1)
        assert short.response_time == pytest.approx(9.9, rel=1e-3)


class TestFIFOPreempt:
    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(ValueError):
            FIFOPreemptScheduler(quantum=0.0)

    def test_long_task_preempted_when_queue_nonempty(self):
        result = run_small(
            FIFOPreemptScheduler(quantum=0.1), [(0.0, 1.0), (0.0, 0.1)], num_cores=1
        )
        long_task = next(t for t in result.tasks if t.service_time == 1.0)
        short_task = next(t for t in result.tasks if t.service_time == 0.1)
        assert long_task.preemptions >= 1
        # The short task gets the core after the first quantum instead of
        # waiting a full second.
        assert short_task.first_run_time == pytest.approx(0.1, abs=0.02)

    def test_improves_response_at_cost_of_execution(self):
        specs = [(0.0, 2.0)] + [(0.01 * i, 0.05) for i in range(1, 20)]
        fifo = run_small(FIFOScheduler(), specs, num_cores=1)
        preempt = run_small(FIFOPreemptScheduler(quantum=0.1), specs, num_cores=1)
        assert preempt.summary().p99_response < fifo.summary().p99_response
        assert preempt.summary().total_execution >= fifo.summary().total_execution

    def test_no_preemption_when_alone(self):
        result = run_small(FIFOPreemptScheduler(quantum=0.1), [(0.0, 1.0)], num_cores=1)
        task = result.finished_tasks[0]
        assert task.preemptions == 0
        assert task.execution_time == pytest.approx(1.0)


class TestCFS:
    def test_tasks_start_immediately(self):
        result = run_small(CFSScheduler(), [(0.0, 1.0)] * 4, num_cores=2)
        assert all(t.response_time == pytest.approx(0.0) for t in result.finished_tasks)

    def test_sharing_stretches_execution(self):
        alone = run_small(CFSScheduler(), [(0.0, 1.0)], num_cores=1)
        shared = run_small(CFSScheduler(), [(0.0, 1.0), (0.0, 1.0)], num_cores=1)
        alone_exec = alone.finished_tasks[0].execution_time
        shared_exec = max(t.execution_time for t in shared.finished_tasks)
        assert shared_exec > 1.8 * alone_exec

    def test_least_loaded_placement(self):
        result = run_small(CFSScheduler(), [(0.0, 1.0), (0.0, 1.0)], num_cores=2)
        cores_used = {t.last_core for t in result.finished_tasks}
        assert len(cores_used) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CFSScheduler(balance_interval=0.0)
        with pytest.raises(ValueError):
            CFSScheduler(balance_threshold=0)

    def test_load_balancer_moves_tasks(self):
        scheduler = CFSScheduler(balance_interval=0.05, balance_threshold=2)
        # All tasks arrive while core 0 is the least loaded only initially;
        # later arrivals spread, but a burst at t=0 lands imbalanced once the
        # first completions skew queue lengths.
        result = run_small(scheduler, [(0.0, 0.5)] * 8 + [(0.01, 2.0)] * 4, num_cores=2)
        assert result.completion_ratio == 1.0


class TestRoundRobin:
    def test_is_a_preempting_fifo(self):
        scheduler = RoundRobinScheduler(quantum=0.05)
        assert scheduler.quantum == 0.05
        result = run_small(scheduler, [(0.0, 0.5), (0.0, 0.5)], num_cores=1)
        assert result.completion_ratio == 1.0
        assert any(t.preemptions > 0 for t in result.tasks)

    def test_describe_mentions_quantum(self):
        assert "50" in RoundRobinScheduler(quantum=0.05).describe()
