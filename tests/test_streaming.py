"""Streaming trace replay: lazy arrival sources, chunked feeding, equivalence.

Covers the acceptance criteria of the streaming PR: a ``StreamingWorkload``
fed through ``submit_stream`` is *bit-identical* to submitting the fully
materialised task list — on a single machine and on a cluster, with and
without a network RTT, for any chunk size / low-water mark (hypothesis
property) — while the run retains no task objects.  Also covers the CSV
ingester for the Azure per-minute invocation-count format, the StreamSpec
scenario knobs, the runner CLI flags, and unknown-total progress output.
"""

import io
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    NetworkSpec,
    simulate_cluster,
    simulate_cluster_stream,
)
from repro.scenario import Scenario, Workload, build_stream_source, run
from repro.scenario.workloads import available_stream_sources, create_stream_source
from repro.schedulers.cfs import CFSScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate, simulate_stream
from repro.telemetry import ProgressReporter, TelemetrySpec
from repro.workload.extraction import TraceBucket
from repro.workload.streaming import (
    BucketStreamSource,
    StreamFeed,
    StreamSpec,
    StreamingWorkload,
    csv_stream_source,
    load_invocation_csv,
)


def make_buckets():
    """A small three-bucket trace with idle cells and uneven minutes."""
    return [
        TraceBucket(
            fibonacci_n=25,
            duration=0.05,
            per_minute_counts=np.array([6.0, 0.0, 9.0, 4.0]),
            memory_sizes_mb=[128, 256],
            memory_weights=[0.7, 0.3],
        ),
        TraceBucket(
            fibonacci_n=30,
            duration=0.4,
            per_minute_counts=np.array([3.0, 5.0, 0.0, 2.0]),
            memory_sizes_mb=[512],
            memory_weights=[1.0],
        ),
        TraceBucket(
            fibonacci_n=33,
            duration=1.8,
            per_minute_counts=np.array([0.0, 2.0, 1.0, 0.0]),
            memory_sizes_mb=[1024],
            memory_weights=[1.0],
        ),
    ]


def make_source(limit=None, minutes=4, seed=7):
    return BucketStreamSource(make_buckets(), minutes=minutes, seed=seed, limit=limit)


TOTAL_TASKS = 32  # sum of all per-minute counts above


def assert_same_columns(ref, got):
    """Exact (bitwise) equality of two runs' finished-task columns."""
    ref_rows = np.sort(ref.task_columns().data, order="task_id")
    got_rows = np.sort(got.task_columns().data, order="task_id")
    assert np.array_equal(ref_rows, got_rows)


# ------------------------------------------------------------------ StreamFeed


class TestStreamFeed:
    def test_rechunks_across_windows(self):
        feed = StreamFeed(make_source(), chunk=5)
        chunks = []
        while True:
            chunk = feed.next_chunk()
            if not chunk:
                break
            chunks.append(chunk)
        assert feed.exhausted
        assert feed.fed == TOTAL_TASKS
        assert [len(c) for c in chunks[:-1]] == [5] * (len(chunks) - 1)
        flat = [t for c in chunks for t in c]
        arrivals = [t.arrival_time for t in flat]
        assert arrivals == sorted(arrivals)
        assert [t.task_id for t in flat] == list(range(TOTAL_TASKS))

    def test_skips_empty_windows(self):
        # Minute 4 is beyond every bucket's counts: a globally idle window.
        feed = StreamFeed(make_source(minutes=6), chunk=1000)
        first = feed.next_chunk()
        assert len(first) == TOTAL_TASKS
        assert feed.next_chunk() == []
        assert feed.exhausted

    def test_chunk_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamFeed(make_source(), chunk=0)


# ----------------------------------------------------------- BucketStreamSource


class TestBucketStreamSource:
    def test_materialise_equals_batches(self):
        source = make_source()
        flat = [t for batch in source.batches() for t in batch]
        materialised = source.materialise()
        assert len(materialised) == TOTAL_TASKS
        assert [(t.task_id, t.arrival_time, t.service_time, t.memory_mb) for t in flat] == [
            (t.task_id, t.arrival_time, t.service_time, t.memory_mb)
            for t in materialised
        ]

    def test_replay_is_deterministic(self):
        a = make_source().materialise()
        b = make_source().materialise()
        assert [(t.arrival_time, t.service_time, t.memory_mb) for t in a] == [
            (t.arrival_time, t.service_time, t.memory_mb) for t in b
        ]

    def test_draws_are_window_local(self):
        # Truncating the replay must not change the tasks that are emitted:
        # each (bucket, minute) cell has its own RNG stream, so what came
        # before cannot perturb what comes after.
        full = make_source().materialise()
        limited = make_source(limit=10).materialise()
        assert [(t.arrival_time, t.service_time, t.memory_mb) for t in limited] == [
            (t.arrival_time, t.service_time, t.memory_mb) for t in full[:10]
        ]

    def test_total_hint_and_limit(self):
        assert make_source().total_hint() == TOTAL_TASKS
        assert make_source(limit=10).total_hint() == 10
        assert make_source(limit=10 ** 9).total_hint() == TOTAL_TASKS

    def test_arrivals_globally_sorted(self):
        arrivals = [t.arrival_time for t in make_source().materialise()]
        assert arrivals == sorted(arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            BucketStreamSource([], minutes=4)
        with pytest.raises(ValueError):
            BucketStreamSource(make_buckets(), minutes=0)
        with pytest.raises(ValueError):
            BucketStreamSource(make_buckets(), minutes=4, limit=0)
        with pytest.raises(ValueError):
            BucketStreamSource(make_buckets(), minutes=4, duration_jitter=1.0)


# ---------------------------------------------------- streaming == materialised


class TestSingleMachineEquivalence:
    def test_stream_matches_materialised(self):
        config = SimulationConfig(num_cores=2)
        ref = simulate(FIFOScheduler(), make_source().materialise(), config=config)
        got = simulate_stream(FIFOScheduler(), make_source(), config=config, chunk=7)
        assert not got.tasks  # streaming runs retain no task objects
        assert len(got.task_columns()) == TOTAL_TASKS
        assert_same_columns(ref, got)
        assert ref.summary() == got.summary()

    def test_stream_matches_under_preemption(self):
        config = SimulationConfig(num_cores=1)
        ref = simulate(CFSScheduler(), make_source().materialise(), config=config)
        got = simulate_stream(CFSScheduler(), make_source(), config=config, chunk=3)
        assert_same_columns(ref, got)

    def test_until_cuts_both_paths_identically(self):
        config = SimulationConfig(num_cores=1)
        ref = simulate(
            FIFOScheduler(), make_source().materialise(), config=config, until=130.0
        )
        got = simulate_stream(
            FIFOScheduler(), make_source(), config=config, until=130.0, chunk=4
        )
        assert len(got.task_columns()) == len(ref.task_columns())
        assert_same_columns(ref, got)


CLUSTER_KW = dict(num_nodes=3, cores_per_node=2, scheduler="fifo", dispatcher="jsq")


class TestClusterEquivalence:
    def test_stream_matches_materialised(self):
        config = ClusterConfig(**CLUSTER_KW)
        ref = simulate_cluster(make_source().materialise(), config=config)
        got = simulate_cluster_stream(make_source(), config=config, chunk=7)
        assert not got.tasks
        assert got.tasks_submitted == TOTAL_TASKS
        assert got.finished_count == len(ref.finished_tasks)
        assert_same_columns(ref, got)
        assert ref.summary() == got.summary()
        assert got.tasks_per_node() == ref.tasks_per_node()
        assert got.unserved_tasks() == ref.unserved_tasks() == 0

    def test_stream_matches_with_network_rtt(self):
        # A non-zero RTT makes every arrival take a second ingress hop at the
        # same (time, priority) an arrival could land on — exactly the tie the
        # reserved negative sequence range exists to break.
        config = ClusterConfig(network=NetworkSpec(rtt=0.004), **CLUSTER_KW)
        ref = simulate_cluster(make_source().materialise(), config=config)
        got = simulate_cluster_stream(make_source(), config=config, chunk=5)
        assert_same_columns(ref, got)
        assert got.mean_ingress_wait() == ref.mean_ingress_wait()

    def test_stream_matches_with_work_stealing(self):
        config = ClusterConfig(migration="work_stealing", **CLUSTER_KW)
        ref = simulate_cluster(make_source().materialise(), config=config)
        got = simulate_cluster_stream(make_source(), config=config, chunk=9)
        assert_same_columns(ref, got)


class TestChunkInvariance:
    """The hypothesis property behind the tentpole: chunk boundaries are
    invisible — any (chunk, low_water) pair replays the same run."""

    @given(
        chunk=st.integers(min_value=1, max_value=40),
        low_water=st.none() | st.integers(min_value=0, max_value=12),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_single_machine(self, chunk, low_water):
        config = SimulationConfig(num_cores=2)
        ref = simulate(FIFOScheduler(), make_source().materialise(), config=config)
        got = simulate_stream(
            FIFOScheduler(),
            make_source(),
            config=config,
            chunk=chunk,
            low_water=low_water,
        )
        assert_same_columns(ref, got)
        assert ref.summary() == got.summary()

    @given(chunk=st.integers(min_value=1, max_value=40))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cluster_with_rtt(self, chunk):
        config = ClusterConfig(network=NetworkSpec(rtt=0.01), **CLUSTER_KW)
        ref = simulate_cluster(make_source().materialise(), config=config)
        got = simulate_cluster_stream(make_source(), config=config, chunk=chunk)
        assert_same_columns(ref, got)


# ------------------------------------------------------- unknown-total progress


class _UnboundedSource(StreamingWorkload):
    """A source that cannot cheaply count itself (total_hint -> None)."""

    def __init__(self, inner):
        self.inner = inner

    def total_hint(self):
        return None

    def batches(self):
        return self.inner.batches()


class TestUnknownTotalProgress:
    def test_reporter_rate_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(min_wall_interval=0.0, stream=stream)
        assert reporter.report(12.0, 340, None)
        reporter.close(60.0, 900, None)
        output = stream.getvalue()
        assert "340 tasks" in output
        assert "/s)" in output  # throughput, not a percentage
        assert "%" not in output
        assert "done: 900 tasks" in output

    def test_streaming_run_reports_without_total(self):
        telemetry = TelemetrySpec(progress=True, progress_interval=0.0).build()
        telemetry.progress.stream = io.StringIO()
        result = simulate_stream(
            FIFOScheduler(),
            _UnboundedSource(make_source()),
            config=SimulationConfig(num_cores=2),
            telemetry=telemetry,
            chunk=8,
        )
        assert len(result.task_columns()) == TOTAL_TASKS
        output = telemetry.progress.stream.getvalue()
        assert "done: 32 tasks" in output
        assert "%" not in output

    def test_streaming_run_uses_hint_when_available(self):
        telemetry = TelemetrySpec(progress=True, progress_interval=0.0).build()
        telemetry.progress.stream = io.StringIO()
        simulate_stream(
            FIFOScheduler(),
            make_source(),
            config=SimulationConfig(num_cores=2),
            telemetry=telemetry,
            chunk=8,
        )
        assert "done: 32/32" in telemetry.progress.stream.getvalue()


# ----------------------------------------------------------------- CSV ingestion


CSV_HEADER = "HashOwner,HashApp,HashFunction,Trigger,1,2,3,4,5"


def write_csv(tmp_path, lines, name="trace.csv"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestInvocationCsv:
    def test_round_trip_counts(self, tmp_path):
        path = write_csv(
            tmp_path,
            [
                CSV_HEADER,
                "o1,a1,f1,http,60,0,30,0,10",
                "o1,a1,f2,timer,0,120,0,80,0",
                "o2,a2,f3,queue,50,50,100,200,200",
            ],
        )
        trace = load_invocation_csv(path)
        assert trace.config.num_functions == 3
        assert trace.config.minutes == 5
        source = csv_stream_source(path)
        # downscale_factor defaults to 1.0 for ingested traces: counts replay
        # as-is -> 100 + 200 + 600 invocations.
        assert source.total_hint() == 900
        assert len(csv_stream_source(path, limit=50).materialise()) == 50

    def test_duration_and_memory_overrides(self, tmp_path):
        path = write_csv(
            tmp_path,
            [
                CSV_HEADER + ",AverageDuration,MemoryMB",
                "o1,a1,f1,http,10,0,0,0,0,2.5,512",
            ],
        )
        trace = load_invocation_csv(path)
        profile = trace.functions[0]
        assert profile.average_duration == 2.5
        assert profile.memory_mb == 512

    def test_defaults_are_seeded(self, tmp_path):
        path = write_csv(tmp_path, [CSV_HEADER, "o1,a1,f1,http,5,0,0,0,0"])
        first = load_invocation_csv(path, seed=3).functions[0]
        second = load_invocation_csv(path, seed=3).functions[0]
        other = load_invocation_csv(path, seed=4).functions[0]
        assert (first.average_duration, first.memory_mb) == (
            second.average_duration,
            second.memory_mb,
        )
        assert (first.average_duration, first.memory_mb) != (
            other.average_duration,
            other.memory_mb,
        )

    def test_rejects_non_invocation_format(self, tmp_path):
        path = write_csv(tmp_path, ["a,b,c", "1,2,3"])
        with pytest.raises(ValueError, match="no numeric per-minute columns"):
            load_invocation_csv(path)

    def test_rejects_headerless_and_rowless_files(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty invocation-count CSV"):
            load_invocation_csv(str(empty))
        no_rows = write_csv(tmp_path, [CSV_HEADER], name="norows.csv")
        with pytest.raises(ValueError, match="no function rows"):
            load_invocation_csv(no_rows)

    def test_csv_replay_runs_end_to_end(self, tmp_path):
        path = write_csv(
            tmp_path,
            [
                CSV_HEADER + ",AverageDuration,MemoryMB",
                "o1,a1,f1,http,20,10,0,5,0,0.2,128",
                "o2,a2,f2,timer,0,15,25,0,10,0.8,256",
            ],
        )
        source = csv_stream_source(path)
        result = simulate_cluster_stream(
            source, config=ClusterConfig(num_nodes=2, cores_per_node=2), chunk=16
        )
        assert result.finished_count == 85


# ------------------------------------------------------- StreamSpec and Scenario


class TestStreamSpec:
    def test_defaults_round_trip_empty(self):
        assert StreamSpec().to_dict() == {}
        assert StreamSpec.from_dict({}) == StreamSpec()

    def test_round_trip(self):
        spec = StreamSpec(
            chunk=512, low_water=64, metrics_cap=1000, metrics_policy="spill"
        )
        assert StreamSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamSpec(chunk=0)
        with pytest.raises(ValueError):
            StreamSpec(low_water=-1)
        with pytest.raises(ValueError):
            StreamSpec(metrics_cap=0)
        with pytest.raises(ValueError):
            StreamSpec(metrics_policy="bogus")


class TestStreamScenario:
    def test_json_round_trip(self):
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.02),
            stream=StreamSpec(chunk=256, metrics_cap=500),
        )
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario
        assert again.stream.chunk == 256

    def test_stream_dict_is_coerced(self):
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.02), stream={"chunk": 128}
        )
        assert isinstance(scenario.stream, StreamSpec)
        assert scenario.stream.chunk == 128

    def test_registered_sources(self):
        names = available_stream_sources()
        assert {"two_minute", "ten_minute", "azure_day"} <= set(names)
        with pytest.raises(KeyError, match="unknown stream source"):
            create_stream_source("nope")

    def test_build_stream_source_prefers_csv(self, tmp_path):
        path = write_csv(tmp_path, [CSV_HEADER, "o1,a1,f1,http,10,0,0,0,0"])
        source = build_stream_source(None, StreamSpec(trace_csv=path))
        assert source.total_hint() == 10
        with pytest.raises(ValueError, match="workload source name or a trace_csv"):
            build_stream_source(None, StreamSpec())

    def test_single_machine_streaming_scenario(self):
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.02), stream=StreamSpec(chunk=64)
        )
        result = run(scenario)
        assert not result.result.tasks
        assert len(result.result.task_columns()) > 0

    def test_cluster_streaming_scenario_is_chunk_invariant(self):
        # Scenario-level chunk invariance: the chunk size is an execution
        # detail, never a result knob.
        workload = Workload("two_minute", scale=0.02)
        coarse = run(
            Scenario(
                workload=workload,
                num_nodes=2,
                dispatcher="jsq",
                stream=StreamSpec(chunk=128),
            )
        )
        fine = run(
            Scenario(
                workload=workload,
                num_nodes=2,
                dispatcher="jsq",
                stream=StreamSpec(chunk=17, low_water=3),
            )
        )
        assert fine.result.summary() == coarse.result.summary()
        assert fine.cost == coarse.cost

    def test_streaming_scenario_rejects_explicit_tasks(self):
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.02), stream=StreamSpec()
        )
        with pytest.raises(ValueError, match="lazily"):
            run(scenario, tasks=make_source().materialise())


# ------------------------------------------------------------------- runner CLI


class TestRunnerStreamFlags:
    def write_scenario(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            Scenario(workload=Workload("two_minute", scale=0.02)).to_json()
        )
        return path

    def test_stream_chunk_flag_opts_into_streaming(self, tmp_path, capsys):
        from repro.experiments.runner import run_cli

        rc = run_cli(
            ["--scenario", str(self.write_scenario(tmp_path)), "--stream-chunk", "64"]
        )
        assert rc == 0
        assert "tasks" in capsys.readouterr().out

    def test_trace_csv_flag(self, tmp_path, capsys):
        from repro.experiments.runner import run_cli

        csv_path = write_csv(
            tmp_path,
            [CSV_HEADER + ",AverageDuration,MemoryMB", "o1,a1,f1,http,30,0,10,0,0,0.3,128"],
        )
        rc = run_cli(
            [
                "--scenario",
                str(self.write_scenario(tmp_path)),
                "--trace-csv",
                csv_path,
                "--metrics-cap",
                "16",
                "--metrics-policy",
                "spill",
            ]
        )
        assert rc == 0
        capsys.readouterr()

    def test_bad_stream_flags_fail_cleanly(self, tmp_path, capsys):
        from repro.experiments.runner import run_cli

        rc = run_cli(
            ["--scenario", str(self.write_scenario(tmp_path)), "--stream-chunk", "0"]
        )
        assert rc == 2
        assert "bad stream flags" in capsys.readouterr().err

    def test_stream_flags_require_scenario(self, capsys):
        from repro.experiments.runner import run_cli

        rc = run_cli(["--stream-chunk", "64"])
        assert rc == 2
        assert "require --scenario" in capsys.readouterr().err
