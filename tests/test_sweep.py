"""Tests for the sweep engine: spec, expansion, executor, table, runner glue.

The load-bearing property is the determinism contract: every swept point is
bit-identical to a serial ``run()`` of the same scenario, no matter how many
worker processes execute the sweep, which start method spawns them, in what
order points complete, or in what order the spec's axes were declared.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.common import ExperimentOutput, run_experiment
from repro.scenario import Scenario, Workload, run
from repro.sweep import (
    GridAxis,
    PointSpec,
    RandomAxis,
    SweepError,
    SweepSpec,
    SweepTable,
    apply_overrides,
    derive_seed,
    point_row,
    run_sweep,
    sweep_results,
)

#: Smallest viable base: the two-minute workload floors at ~200 tasks, and a
#: few cores keep each point well under a second.
BASE = Scenario(workload=Workload("two_minute", scale=0.02), num_cores=4)

GRID_AXES = (
    GridAxis("num_cores", (4, 8)),
    GridAxis("scheduler", ("fifo", "sjf")),
)


def grid_spec(axes=GRID_AXES, name="grid") -> SweepSpec:
    return SweepSpec(base=BASE, axes=tuple(axes), name=name)


# ---------------------------------------------------------------------------
# Spec: overrides, expansion, serialisation
# ---------------------------------------------------------------------------


class TestApplyOverrides:
    def test_dotted_path_patches_nested_field(self):
        scenario = apply_overrides(
            Scenario(
                workload=Workload("ten_minute", scale=0.02),
                num_nodes=2,
                cores_per_node=8,
            ),
            {"network.rtt": 0.2, "dispatcher": "consistent_hash"},
        )
        assert scenario.network is not None and scenario.network.rtt == 0.2
        assert scenario.dispatcher == "consistent_hash"

    def test_empty_overrides_reproduce_base(self):
        assert apply_overrides(BASE, {}) == BASE

    def test_unknown_field_names_it_with_suggestion(self):
        with pytest.raises(SweepError, match=r"schduler.*did you mean 'scheduler'"):
            apply_overrides(BASE, {"schduler": "cfs"})

    def test_descending_into_scalar_is_named(self):
        with pytest.raises(SweepError, match=r"num_cores.*not a mapping"):
            apply_overrides(BASE, {"num_cores.deep": 1})

    def test_invalid_value_reports_invalid_scenario(self):
        with pytest.raises(SweepError, match="do not form a valid scenario"):
            apply_overrides(BASE, {"num_cores": -3})


class TestExpansion:
    def test_grid_is_cartesian_product_in_sorted_field_order(self):
        points = grid_spec().expand()
        assert [p.label for p in points] == [
            "num_cores=4,scheduler=fifo",
            "num_cores=4,scheduler=sjf",
            "num_cores=8,scheduler=fifo",
            "num_cores=8,scheduler=sjf",
        ]
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert points[2].scenario.num_cores == 8
        assert points[1].scenario.scheduler == "sjf"

    def test_axis_declaration_order_is_irrelevant(self):
        forward = grid_spec().expand()
        backward = grid_spec(axes=tuple(reversed(GRID_AXES))).expand()
        assert [(p.label, p.overrides) for p in forward] == [
            (p.label, p.overrides) for p in backward
        ]

    def test_point_mode_keeps_declaration_order(self):
        spec = SweepSpec(
            base=BASE,
            points=(PointSpec("b", {"scheduler": "sjf"}), PointSpec("a", {})),
        )
        assert [p.label for p in spec.expand()] == ["b", "a"]

    def test_random_axis_draws_depend_only_on_seed_field_sample(self):
        axis = RandomAxis("workload.scale", 0.01, 0.1, log=True)
        assert axis.draw(7, 0) == axis.draw(7, 0)
        assert axis.draw(7, 0) != axis.draw(7, 1)
        assert axis.draw(8, 0) != axis.draw(7, 0)
        for sample in range(20):
            assert 0.01 <= axis.draw(7, sample) <= 0.1

    def test_derive_seeds_gives_each_point_a_distinct_seed(self):
        spec = SweepSpec(base=BASE, axes=GRID_AXES, seed=5, derive_seeds=True)
        seeds = [p.overrides["seed"] for p in spec.expand()]
        assert len(set(seeds)) == len(seeds)
        assert seeds[0] == derive_seed(5, 0)

    def test_duplicate_axis_fields_rejected(self):
        with pytest.raises(SweepError, match="duplicate"):
            SweepSpec(
                base=BASE,
                axes=(GridAxis("num_cores", (4,)), GridAxis("num_cores", (8,))),
            )

    def test_axes_or_points_required(self):
        with pytest.raises(SweepError):
            SweepSpec(base=BASE)


class TestSpecJson:
    def test_round_trip_preserves_expansion(self):
        spec = SweepSpec(
            base=BASE,
            axes=(
                GridAxis("num_cores", (4, 8)),
                RandomAxis("workload.scale", 0.02, 0.05),
            ),
            samples=3,
            seed=11,
            name="roundtrip",
        )
        clone = SweepSpec.from_json(spec.to_json())
        assert clone == spec
        assert [(p.label, p.overrides) for p in clone.expand()] == [
            (p.label, p.overrides) for p in spec.expand()
        ]

    def test_invalid_json_is_reported_as_such(self):
        with pytest.raises(SweepError, match="not valid JSON"):
            SweepSpec.from_json("{nope")

    def test_unknown_spec_key_is_named(self):
        payload = {"base": BASE.to_dict(), "axis": []}
        with pytest.raises(SweepError, match=r"unknown sweep spec field 'axis'.*'axes'"):
            SweepSpec.from_dict(payload)

    def test_unknown_axis_key_is_named(self):
        payload = {
            "base": BASE.to_dict(),
            "axes": [{"field": "num_cores", "values": [4], "lables": ["a"]}],
        }
        with pytest.raises(SweepError, match="lables"):
            SweepSpec.from_dict(payload)


# ---------------------------------------------------------------------------
# Executor: determinism across jobs / start method / completion order
# ---------------------------------------------------------------------------


def serial_reference(spec: SweepSpec) -> SweepTable:
    """Rows rebuilt point-by-point through the plain run() pipeline."""
    rows = [
        point_row(p.index, p.label, p.overrides, run(p.scenario))
        for p in spec.expand()
    ]
    return SweepTable(rows=rows, name=spec.name)


class TestExecutor:
    def test_serial_sweep_is_bit_identical_to_plain_runs(self):
        table = run_sweep(grid_spec())
        assert table.rows == serial_reference(grid_spec()).rows

    def test_pool_is_bit_identical_to_serial(self):
        serial = run_sweep(grid_spec())
        pooled = run_sweep(grid_spec(), jobs=2)
        assert pooled.rows == serial.rows
        assert pooled.columns == serial.columns

    def test_spawn_start_method_is_bit_identical(self):
        serial = run_sweep(grid_spec())
        spawned = run_sweep(grid_spec(), jobs=2, mp_context="spawn")
        assert spawned.rows == serial.rows

    def test_sweep_results_match_plain_runs(self):
        spec = SweepSpec(
            base=BASE,
            points=(PointSpec("base", {}), PointSpec("sjf", {"scheduler": "sjf"})),
        )
        results = sweep_results(spec, jobs=2)
        assert list(results) == ["base", "sjf"]
        direct = run(apply_overrides(BASE, {"scheduler": "sjf"}))
        assert (
            results["sjf"].result.summary().as_dict()
            == direct.result.summary().as_dict()
        )
        assert results["sjf"].cost.total == direct.cost.total

    def test_failing_point_names_its_label(self):
        spec = SweepSpec(
            base=BASE,
            points=(
                PointSpec("ok", {}),
                PointSpec("broken", {"workload.source": "no_such_trace"}),
            ),
        )
        with pytest.raises(SweepError, match=r"sweep point 1 \('broken'\)"):
            run_sweep(spec, jobs=2)

    def test_bad_jobs_rejected(self):
        with pytest.raises(SweepError, match="jobs"):
            run_sweep(grid_spec(), jobs=0)

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        jobs=st.sampled_from([1, 2, 4]),
        reverse_axes=st.booleans(),
    )
    def test_pool_size_and_axis_order_invariance(self, jobs, reverse_axes):
        axes = tuple(reversed(GRID_AXES)) if reverse_axes else GRID_AXES
        table = run_sweep(grid_spec(axes=axes), jobs=jobs)
        assert table.rows == reference_rows()


@lru_cache(maxsize=1)
def reference_rows():
    """One serial reference shared by the hypothesis examples above."""
    return run_sweep(grid_spec()).rows


# ---------------------------------------------------------------------------
# Table: columns, export, round-trip
# ---------------------------------------------------------------------------


class TestTable:
    def test_rows_carry_swept_fields_and_metrics(self):
        table = run_sweep(grid_spec())
        assert table.swept_columns == ["num_cores", "scheduler"]
        assert table.column("num_cores") == [4, 4, 8, 8]
        row = table.row_for("num_cores=8,scheduler=sjf")
        assert row["point"] == 3
        assert row["count"] > 0
        assert row["total_cost"] > 0

    def test_unknown_column_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            run_sweep(grid_spec()).column("nope")

    def test_csv_and_json_export(self, tmp_path):
        table = run_sweep(grid_spec())
        csv_path = tmp_path / "deep" / "sweep.csv"
        table.write_csv(csv_path)
        header = csv_path.read_text().splitlines()[0].split(",")
        assert header[:4] == ["point", "label", "num_cores", "scheduler"]
        json_path = tmp_path / "sweep.json"
        table.write_json(json_path)
        clone = SweepTable.from_json(json_path.read_text())
        assert clone.rows == table.rows
        assert clone.columns == table.columns

    def test_render_mentions_every_point(self):
        rendered = run_sweep(grid_spec()).render(title="grid")
        for label in ("num_cores=4,scheduler=fifo", "num_cores=8,scheduler=sjf"):
            assert label in rendered


# ---------------------------------------------------------------------------
# Satellites: run_experiment scale/jobs threading, write_csv collisions
# ---------------------------------------------------------------------------


class TestRunExperimentScale:
    def test_scale_changes_the_workload(self):
        small = run_experiment("fig05", scale=0.02)
        large = run_experiment("fig05", scale=0.05)
        assert (
            small.data["fifo"]["total_execution"]
            < large.data["fifo"]["total_execution"]
        )

    def test_jobs_does_not_change_results(self):
        serial = run_experiment("fig05", scale=0.02)
        pooled = run_experiment("fig05", scale=0.02, jobs=2)
        assert pooled.data == serial.data
        assert pooled.render() == serial.render()

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError, match="scale must be positive"):
            run_experiment("fig05", scale=0.0)

    def test_experiment_without_scale_param_fails_loudly(self):
        from repro.experiments import common

        common._EXPERIMENTS["_fixed_scale"] = lambda: None
        try:
            with pytest.raises(TypeError, match="does not accept scale"):
                run_experiment("_fixed_scale", scale=0.5)
        finally:
            del common._EXPERIMENTS["_fixed_scale"]


class TestWriteCsvCollisions:
    def output(self) -> ExperimentOutput:
        from repro.analysis.report import ComparisonTable

        table = ComparisonTable(columns=("m",))
        table.add_row("a", {"m": 1.0})
        return ExperimentOutput(
            experiment_id="demo",
            title="demo",
            description="",
            text="",
            tables={"metrics": table},
        )

    def test_creates_missing_directory(self, tmp_path):
        target = tmp_path / "not" / "yet" / "there"
        written = self.output().write_csv(target)
        assert written["metrics"].exists()
        assert written["metrics"].parent == target

    def test_file_collision_is_a_clear_error(self, tmp_path):
        clash = tmp_path / "results"
        clash.write_text("occupied")
        with pytest.raises(FileExistsError, match="collides with an existing file"):
            self.output().write_csv(clash)

    def test_directory_collision_on_csv_target(self, tmp_path):
        (tmp_path / "demo_metrics.csv").mkdir()
        with pytest.raises(FileExistsError, match="existing directory"):
            self.output().write_csv(tmp_path)


# ---------------------------------------------------------------------------
# Runner + scenarios/ library
# ---------------------------------------------------------------------------

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"


class TestScenarioLibrary:
    def test_every_shipped_scenario_parses(self):
        paths = sorted(SCENARIO_DIR.glob("*.json"))
        assert len(paths) >= 5
        for path in paths:
            payload = json.loads(path.read_text())
            if "base" in payload:
                spec = SweepSpec.from_dict(payload)
                assert spec.expand()
            else:
                assert Scenario.from_dict(payload).workload is not None

    def test_runner_sweep_flag(self, tmp_path, capsys):
        from repro.experiments.runner import run_cli

        spec = grid_spec(name="cli_grid")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        out_dir = tmp_path / "out"
        status = run_cli(
            ["--sweep", str(spec_path), "--jobs", "2", "--output", str(out_dir)]
        )
        assert status == 0
        assert "cli_grid" in capsys.readouterr().out
        assert (out_dir / "cli_grid.csv").exists()
        assert (out_dir / "cli_grid.json").exists()

    def test_runner_sweep_flag_bad_spec(self, tmp_path, capsys):
        from repro.experiments.runner import run_cli

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"base": BASE.to_dict(), "axis": []}))
        assert run_cli(["--sweep", str(bad)]) == 1
        assert "unknown sweep spec field" in capsys.readouterr().err

    def test_runner_output_file_collision(self, tmp_path, capsys):
        from repro.experiments.runner import run_cli

        clash = tmp_path / "out"
        clash.write_text("occupied")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(grid_spec().to_json())
        assert run_cli(["--sweep", str(spec_path), "--output", str(clash)]) == 1
        assert "collides with an existing file" in capsys.readouterr().err
