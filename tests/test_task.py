"""Unit tests for the task model and its metric definitions."""

import pytest

from repro.simulation.task import Task, TaskState, make_tasks
from tests.conftest import make_task


class TestTaskValidation:
    def test_rejects_nonpositive_service(self):
        with pytest.raises(ValueError):
            make_task(service=0.0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            make_task(arrival=-1.0)

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            make_task(memory_mb=0)

    def test_remaining_initialised_to_service(self):
        task = make_task(service=2.5)
        assert task.remaining == 2.5
        assert task.state is TaskState.CREATED


class TestTaskLifecycle:
    def test_metrics_follow_ostep_definitions(self):
        task = make_task(arrival=10.0, service=2.0)
        task.mark_queued()
        task.mark_running(now=13.0, core_id=0)
        task.account_service(2.0)
        task.mark_finished(now=16.0)
        assert task.response_time == pytest.approx(3.0)
        assert task.execution_time == pytest.approx(3.0)
        assert task.turnaround_time == pytest.approx(6.0)
        assert task.slowdown == pytest.approx(3.0)

    def test_first_run_recorded_once(self):
        task = make_task(arrival=0.0)
        task.mark_running(1.0, core_id=0)
        task.mark_preempted()
        task.mark_running(5.0, core_id=1)
        assert task.first_run_time == 1.0
        assert task.migrations == 1
        assert task.preemptions == 1

    def test_metrics_none_before_events(self):
        task = make_task()
        assert task.execution_time is None
        assert task.response_time is None
        assert task.turnaround_time is None
        assert task.slowdown is None

    def test_cannot_finish_without_running(self):
        task = make_task()
        with pytest.raises(RuntimeError):
            task.mark_finished(1.0)

    def test_cannot_requeue_finished_task(self):
        task = make_task()
        task.mark_running(0.0, core_id=0)
        task.mark_finished(1.0)
        with pytest.raises(RuntimeError):
            task.mark_queued()
        with pytest.raises(RuntimeError):
            task.mark_running(2.0, core_id=0)
        with pytest.raises(RuntimeError):
            task.mark_preempted()

    def test_account_service_reduces_remaining(self):
        task = make_task(service=1.0)
        task.account_service(0.4)
        assert task.remaining == pytest.approx(0.6)
        assert task.cpu_time_received == pytest.approx(0.4)
        assert task.vruntime == pytest.approx(0.4)

    def test_account_service_clamps_at_zero(self):
        task = make_task(service=1.0)
        task.account_service(5.0)
        assert task.remaining == 0.0

    def test_account_negative_service_rejected(self):
        task = make_task()
        with pytest.raises(ValueError):
            task.account_service(-0.1)


class TestMakeTasks:
    def test_builds_sequential_ids(self):
        tasks = make_tasks([(0.0, 1.0), (1.0, 2.0)])
        assert [t.task_id for t in tasks] == [0, 1]
        assert tasks[1].service_time == 2.0
