"""Telemetry subsystem: spec round-trip, tracing, gauges, sampler, exporters.

Covers the acceptance criteria of the telemetry PR: the TelemetrySpec rides a
Scenario through JSON, a traced cluster run exports schema-valid Chrome
trace-event JSON (balanced begin/end pairs per track, instants for autoscaler
decisions), gauge timelines match the recorded spans, the ``record_series``
back-compat shim keeps legacy series names, and telemetry-off runs produce
bit-identical metrics to telemetry-on runs.
"""

import io
import json

import numpy as np
import pytest

from repro.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    NetworkSpec,
    ReactiveAutoscaler,
    simulate_cluster,
)
from repro.scenario import Scenario, Workload, run
from repro.schedulers.cfs import CFSScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.clock import VirtualClock
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator, simulate
from repro.simulation.events import EventQueue
from repro.simulation.machine import Machine
from repro.simulation.task import make_tasks
from repro.telemetry import (
    SAMPLER_TAG,
    CounterRegistry,
    GaugeRegistry,
    ProgressReporter,
    TelemetrySpec,
    Tracer,
    chrome_trace,
    timeline_table,
    write_chrome_trace,
    write_timeline_csv,
)
from repro.telemetry.export import TIMELINE_DTYPE
from repro.telemetry.tracer import (
    AUTOSCALER_TID,
    CLUSTER_PID,
    DISPATCH_TID,
    MACHINE_PID,
    node_pid,
)

# An interval that never coincides with the task arrival/service grid used
# below, so "gauge at sample time" vs "span covers sample time" is unambiguous.
ODD_INTERVAL = 0.0131


# --------------------------------------------------------------------- fixtures


@pytest.fixture(scope="module")
def standalone_traced():
    """A traced 2-core CFS run with queueing and preemption."""
    specs = [(i * 0.07, 0.3 + (i % 5) * 0.11) for i in range(40)]
    result = simulate(
        CFSScheduler(),
        make_tasks(specs),
        config=SimulationConfig(num_cores=2),
        telemetry=TelemetrySpec(sample_interval=0.1),
    )
    return specs, result


@pytest.fixture(scope="module")
def autoscale_traced():
    """A traced autoscaling cluster run with ingress delay and stealing."""
    tasks = make_tasks([(i * 0.01, 0.8) for i in range(120)])
    config = ClusterConfig(
        num_nodes=2,
        cores_per_node=2,
        scheduler="fifo",
        dispatcher="jsq",
        migration="work_stealing",
        network=NetworkSpec(rtt=0.004),
    )
    autoscaler = ReactiveAutoscaler(
        AutoscalerConfig(
            min_nodes=2,
            max_nodes=6,
            check_interval=0.25,
            scale_up_load=1.0,
            cooldown=0.5,
        )
    )
    result = simulate_cluster(
        tasks,
        config=config,
        autoscaler=autoscaler,
        telemetry=TelemetrySpec(sample_interval=0.05),
    )
    return tasks, result


@pytest.fixture(scope="module")
def gauge_run():
    """A plain FIFO cluster (no migration, no ingress delay) for gauge checks."""
    tasks = make_tasks([(i * 0.1, 0.53) for i in range(30)])
    config = ClusterConfig(
        num_nodes=2, cores_per_node=2, scheduler="fifo", dispatcher="round_robin"
    )
    return simulate_cluster(
        tasks, config=config, telemetry=TelemetrySpec(sample_interval=ODD_INTERVAL)
    )


# ------------------------------------------------------------------------- spec


class TestTelemetrySpec:
    def test_defaults(self):
        spec = TelemetrySpec()
        assert spec.trace
        assert spec.sample_interval is None
        assert not spec.progress
        assert spec.drive_interval is None

    def test_drive_interval_prefers_sample_interval(self):
        assert TelemetrySpec(sample_interval=0.25).drive_interval == 0.25
        # Progress alone still needs a heartbeat.
        assert TelemetrySpec(progress=True).drive_interval == 1.0
        assert TelemetrySpec(progress=True, sample_interval=0.5).drive_interval == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetrySpec(sample_interval=0.0)
        with pytest.raises(ValueError):
            TelemetrySpec(sample_interval=-1.0)
        with pytest.raises(ValueError):
            TelemetrySpec(progress_interval=-0.1)
        with pytest.raises(ValueError):
            TelemetrySpec(max_events=0)

    def test_to_dict_omits_defaults(self):
        assert TelemetrySpec().to_dict() == {}

    def test_dict_round_trip(self):
        spec = TelemetrySpec(
            trace=False, sample_interval=0.5, progress=True,
            progress_interval=2.0, max_events=10,
        )
        assert TelemetrySpec.from_dict(spec.to_dict()) == spec

    def test_scenario_json_round_trip(self):
        spec = TelemetrySpec(sample_interval=0.5, progress_interval=2.0)
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.05), telemetry=spec
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored.telemetry == spec
        # Absent telemetry stays absent (and off the wire format).
        bare = Scenario(workload=Workload("two_minute", scale=0.05))
        assert "telemetry" not in bare.to_dict()
        assert Scenario.from_json(bare.to_json()).telemetry is None

    def test_scenario_accepts_dict_form(self):
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.05),
            telemetry={"sample_interval": 0.25},
        )
        assert scenario.telemetry == TelemetrySpec(sample_interval=0.25)

    def test_with_telemetry_helper(self):
        scenario = Scenario(workload=Workload("two_minute", scale=0.05))
        traced = scenario.with_telemetry(sample_interval=0.5)
        assert traced.telemetry == TelemetrySpec(sample_interval=0.5)
        assert scenario.telemetry is None


# ----------------------------------------------------------------- tracer unit


class TestTracer:
    def test_begin_end_stores_span(self):
        tracer = Tracer()
        tracer.begin(("q", 1), "queued", 2, 0, 1.0, task_id=1)
        tracer.end(("q", 1), 3.5)
        assert tracer.spans == [("queued", 2, 0, 1.0, 3.5, 1)]

    def test_begin_on_open_key_closes_previous(self):
        tracer = Tracer()
        tracer.begin(("q", 1), "queued", 2, 0, 1.0, task_id=1)
        tracer.begin(("q", 1), "queued", 3, 0, 2.0, task_id=1)
        tracer.end(("q", 1), 4.0)
        assert tracer.spans == [
            ("queued", 2, 0, 1.0, 2.0, 1),
            ("queued", 3, 0, 2.0, 4.0, 1),
        ]

    def test_end_without_begin_is_noop(self):
        tracer = Tracer()
        tracer.end(("q", 99), 1.0)
        assert tracer.spans == []

    def test_finish_closes_open_spans(self):
        tracer = Tracer()
        tracer.begin(("r", 7), "run", 1, 2, 0.5, task_id=7)
        assert tracer.open_span_count() == 1
        tracer.finish(9.0)
        assert tracer.open_span_count() == 0
        assert tracer.spans == [("run", 1, 2, 0.5, 9.0, 7)]

    def test_instants_and_names(self):
        tracer = Tracer()
        tracer.name_process(1, "node 0")
        tracer.name_track(1, 0, "queue")
        tracer.instant("node-boot", 1, 0, 2.0, value=3.0)
        assert tracer.instants == [("node-boot", 1, 0, 2.0, -1, 3.0)]
        assert tracer.process_names[1] == "node 0"
        assert tracer.track_names[(1, 0)] == "queue"

    def test_max_events_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.instant("x", 0, 0, float(i))
        assert tracer.event_count == 2
        assert tracer.dropped == 3
        # Spans beyond the cap are dropped too.
        tracer.begin(("q", 1), "queued", 0, 0, 0.0)
        tracer.end(("q", 1), 1.0)
        assert len(tracer.spans) == 0
        assert tracer.dropped == 4


# --------------------------------------------------------- gauges and counters


class TestGaugesAndCounters:
    def test_register_sample_unregister(self):
        gauges = GaugeRegistry()
        sink = {}
        state = {"depth": 2.0}
        gauges.register("queue_depth", lambda: state["depth"], sink)
        gauges.sample_all(1.0)
        state["depth"] = 5.0
        gauges.sample_all(2.0)
        points = sink["queue_depth"]
        assert [(p.time, p.value) for p in points] == [(1.0, 2.0), (2.0, 5.0)]
        assert gauges.samples_recorded == 2
        gauges.unregister("queue_depth")
        gauges.sample_all(3.0)
        assert len(sink["queue_depth"]) == 2
        assert gauges.registered() == []

    def test_record_is_the_ad_hoc_path(self):
        gauges = GaugeRegistry()
        sink = {}
        gauges.record(sink, "autoscaler.load", 1.5, 0.75)
        assert gauges.points_recorded == 1
        assert sink["autoscaler.load"][0].value == 0.75

    def test_counters(self):
        counters = CounterRegistry()
        counters.inc("steals")
        counters.inc("steals", 2.0)
        assert counters.get("steals") == 3.0
        assert counters.get("missing") == 0.0
        assert counters.as_dict() == {"steals": 3.0}


# ------------------------------------------- sampler timer and cancel_pending


class TestGaugeSampler:
    """Satellite: tagged payload events driving the sampler, cancellation."""

    @staticmethod
    def _fresh(interval=0.5, can_continue=lambda: False):
        telemetry = TelemetrySpec(trace=False, sample_interval=interval).build()
        events, clock = EventQueue(), VirtualClock()
        telemetry.start(events, clock, can_continue)
        return telemetry, events, clock

    def test_start_arms_one_tagged_payload_event(self):
        telemetry, events, clock = self._fresh()
        assert telemetry.sampler.armed
        event = events.pop()
        assert event is not None
        assert event.tag == SAMPLER_TAG
        assert event.payload is telemetry.sampler
        assert event.time == 0.5
        assert events.pop() is None

    def test_tick_samples_and_rearms_while_work_remains(self):
        state = {"work": 3}
        telemetry, events, clock = self._fresh(can_continue=lambda: state["work"] > 0)
        sink = {}
        telemetry.gauges.register("work", lambda: float(state["work"]), sink)
        ticks = 0
        while True:
            event = events.pop()
            if event is None:
                break
            clock.advance_to(event.time)
            event.payload.on_tick()
            ticks += 1
            state["work"] -= 1
        # Three ticks re-arm (work remained), the fourth sees work == 0.
        assert ticks == 4
        assert telemetry.sampler.ticks == 4
        assert [p.time for p in sink["work"]] == [0.5, 1.0, 1.5, 2.0]
        assert not telemetry.sampler.armed

    def test_cancel_pending_by_tag_kills_armed_tick(self):
        telemetry, events, clock = self._fresh()
        assert events.cancel_pending(SAMPLER_TAG) == 1
        assert events.pop() is None

    def test_stop_cancels_and_is_idempotent(self):
        telemetry, events, clock = self._fresh()
        telemetry.sampler.stop()
        telemetry.sampler.stop()
        assert not telemetry.sampler.armed
        assert events.pop() is None

    def test_restart_replaces_the_armed_event(self):
        telemetry, events, clock = self._fresh()
        telemetry.sampler.start(events, clock, lambda: False)
        # The first armed event was cancelled; exactly one live tick remains.
        event = events.pop()
        assert event is not None and event.tag == SAMPLER_TAG
        assert events.pop() is None

    def test_engine_drains_sampler_at_end_of_run(self):
        telemetry = TelemetrySpec(sample_interval=0.05).build()
        result = simulate(
            FIFOScheduler(),
            make_tasks([(0.0, 1.0), (0.1, 0.5)]),
            config=SimulationConfig(num_cores=1),
            telemetry=telemetry,
        )
        assert telemetry.sampler.ticks > 0
        assert not telemetry.sampler.armed
        # The end-of-run drain takes one final sample at the finish clock.
        assert result.telemetry.samples == telemetry.gauges.samples_recorded
        busy = result.series["machine.busy_cores"]
        assert busy[-1].time == pytest.approx(result.simulated_time)


# ------------------------------------------------------------ standalone runs


class TestStandaloneTracing:
    def test_result_carries_snapshot(self, standalone_traced):
        specs, result = standalone_traced
        snapshot = result.telemetry
        assert snapshot is not None
        assert snapshot.span_count > 0
        assert snapshot.samples > 0
        assert snapshot.process_names[MACHINE_PID] == "machine"

    def test_every_task_has_queue_and_run_spans(self, standalone_traced):
        specs, result = standalone_traced
        spans = result.telemetry.spans
        run_tasks = {s[5] for s in spans if s[0] == "run"}
        queued_tasks = {s[5] for s in spans if s[0] == "queued"}
        assert run_tasks == set(range(len(specs)))
        assert queued_tasks == set(range(len(specs)))
        # CFS on 2 cores over this burst timeshares: more run slices than tasks.
        assert sum(1 for s in spans if s[0] == "run") > len(specs)

    def test_arrival_instants(self, standalone_traced):
        specs, result = standalone_traced
        arrivals = [i for i in result.telemetry.instants if i[0] == "arrival"]
        assert len(arrivals) == len(specs)
        assert sorted(i[3] for i in arrivals) == [a for a, _ in specs]

    def test_run_spans_live_on_core_tracks(self, standalone_traced):
        _, result = standalone_traced
        core_tids = {
            tid for (pid, tid) in result.telemetry.track_names
            if pid == MACHINE_PID and tid > 0
        }
        assert core_tids == {1, 2}
        assert all(s[2] in core_tids for s in result.telemetry.spans if s[0] == "run")

    def test_describe_mentions_telemetry(self, standalone_traced):
        _, result = standalone_traced
        assert "telemetry" in result.describe()
        assert result.telemetry.summary_line() in result.describe()

    def test_busy_cores_gauge_sampled(self, standalone_traced):
        _, result = standalone_traced
        points = result.series["machine.busy_cores"]
        assert len(points) > 10
        assert all(0.0 <= p.value <= 2.0 for p in points)

    def test_metrics_identical_with_telemetry_off(self, standalone_traced):
        specs, traced = standalone_traced
        plain = simulate(
            CFSScheduler(), make_tasks(specs), config=SimulationConfig(num_cores=2)
        )
        assert plain.telemetry is None
        assert "telemetry" not in plain.describe()
        assert np.array_equal(
            np.sort(plain.turnaround_times()), np.sort(traced.turnaround_times())
        )
        assert plain.summary() == traced.summary()

    def test_max_events_cap_reports_dropped(self):
        result = simulate(
            FIFOScheduler(),
            make_tasks([(i * 0.1, 0.2) for i in range(20)]),
            telemetry=TelemetrySpec(max_events=5),
        )
        assert result.telemetry.dropped > 0
        assert "dropped" in result.telemetry.summary_line()

    def test_record_series_shim_counts_points(self):
        cfg = SimulationConfig(num_cores=1)
        scheduler = FIFOScheduler()
        machine = Machine(cfg, groups=scheduler.preferred_groups(cfg.num_cores))
        simulator = Simulator(
            machine, scheduler, config=cfg, telemetry=TelemetrySpec()
        )
        simulator.record_series("custom.signal", 42.0)
        assert simulator.collector.series["custom.signal"][0].value == 42.0
        assert simulator.telemetry.gauges.points_recorded == 1


# --------------------------------------------------------------- cluster runs


class TestClusterTracing:
    def test_cluster_metrics_identical_with_telemetry_off(self):
        specs = [(i * 0.05, 0.4) for i in range(40)]
        config = ClusterConfig(
            num_nodes=3, cores_per_node=2, scheduler="fifo", dispatcher="jsq",
            network=NetworkSpec(rtt=0.002),
        )
        traced = simulate_cluster(
            make_tasks(specs), config=config,
            telemetry=TelemetrySpec(sample_interval=0.1),
        )
        plain = simulate_cluster(make_tasks(specs), config=config)
        assert plain.telemetry is None
        assert traced.telemetry is not None
        assert plain.summary() == traced.summary()
        assert plain.tasks_per_node() == traced.tasks_per_node()

    def test_node_processes_named(self, autoscale_traced):
        _, result = autoscale_traced
        names = result.telemetry.process_names
        assert names[CLUSTER_PID] == "cluster"
        for node_id in range(2):
            assert names[node_pid(node_id)] == f"node {node_id}"

    def test_dispatch_instants_target_valid_nodes(self, autoscale_traced):
        tasks, result = autoscale_traced
        dispatches = [i for i in result.telemetry.instants if i[0] == "dispatch"]
        assert len(dispatches) == len(tasks)
        node_pids = {p for p in result.telemetry.process_names if p != CLUSTER_PID}
        for _, pid, tid, _, task_id, value in dispatches:
            assert (pid, tid) == (CLUSTER_PID, DISPATCH_TID)
            assert node_pid(int(value)) in node_pids
            assert 0 <= task_id < len(tasks)

    def test_autoscaler_decisions_recorded(self, autoscale_traced):
        _, result = autoscale_traced
        snapshot = result.telemetry
        scale_ups = [i for i in snapshot.instants if i[0] == "scale-up"]
        assert scale_ups, "burst workload must trigger at least one scale-up"
        assert all(
            (i[1], i[2]) == (CLUSTER_PID, AUTOSCALER_TID) for i in scale_ups
        )
        # The instant's value is the fleet load signal that crossed the bar.
        assert all(i[5] >= 1.0 for i in scale_ups)
        assert snapshot.counters["autoscaler.scale_ups"] == len(scale_ups)
        boots = [i for i in snapshot.instants if i[0] == "node-boot"]
        assert len(boots) == len(scale_ups)

    def test_migration_counters_match_result(self, autoscale_traced):
        _, result = autoscale_traced
        counters = result.telemetry.counters
        if result.tasks_migrated:
            assert counters["migration.completed"] == result.tasks_migrated
            planned = counters.get("migration.steals_planned", 0) + counters.get(
                "migration.rescues_planned", 0
            )
            assert planned >= result.tasks_migrated

    def test_wire_spans_cover_ingress(self, autoscale_traced):
        tasks, result = autoscale_traced
        wires = [s for s in result.telemetry.spans if s[0] == "wire"]
        assert 0 < len(wires) <= len(tasks)
        # Every task pays at least the one-way trip (rtt / 2) on the wire.
        assert all(s[4] - s[3] >= 0.002 - 1e-12 for s in wires)

    def test_fleet_load_gauge_sampled(self, autoscale_traced):
        _, result = autoscale_traced
        points = result.series_values("cluster.fleet_load")
        assert len(points) > 10
        assert max(p.value for p in points) >= 1.0
        # The legacy autoscaler series survives under its old name alongside.
        assert result.series_values("autoscaler.load")


class TestRecordSeriesBackCompat:
    """The autoscaler.load series keeps its name with telemetry on and off."""

    @staticmethod
    def _run(telemetry):
        tasks = make_tasks([(i * 0.02, 0.6) for i in range(60)])
        config = ClusterConfig(
            num_nodes=2, cores_per_node=2, scheduler="fifo", dispatcher="jsq"
        )
        autoscaler = ReactiveAutoscaler(
            AutoscalerConfig(min_nodes=2, max_nodes=4, check_interval=0.25,
                             scale_up_load=1.0, cooldown=0.5)
        )
        return simulate_cluster(
            tasks, config=config, autoscaler=autoscaler, telemetry=telemetry
        )

    def test_series_identical_on_and_off(self):
        on = self._run(TelemetrySpec())
        off = self._run(None)
        on_points = on.series_values("autoscaler.load")
        off_points = off.series_values("autoscaler.load")
        assert on_points and off_points
        assert [(p.time, p.value) for p in on_points] == [
            (p.time, p.value) for p in off_points
        ]
        # With telemetry on the shim counts those ad-hoc points.
        assert on.telemetry.points >= len(on_points)


class TestGaugeTimeline:
    """Acceptance: the sampled queue-depth series matches the recorded spans."""

    @staticmethod
    def _active(spans, pid, name, t):
        return sum(
            1 for s in spans if s[1] == pid and s[0] == name and s[3] <= t < s[4]
        )

    def test_queue_depth_series_matches_queued_spans(self, gauge_run):
        snapshot = gauge_run.telemetry
        checked = busy_samples = 0
        for node_id in range(2):
            points = gauge_run.series_values(f"cluster.node{node_id}.queue_depth")
            assert points
            for point in points:
                expected = self._active(
                    snapshot.spans, node_pid(node_id), "queued", point.time
                )
                assert point.value == expected
                checked += 1
                busy_samples += expected > 0
        assert checked > 50
        assert busy_samples > 0, "the overloaded fleet must show queueing"

    def test_busy_cores_series_matches_run_spans(self, gauge_run):
        snapshot = gauge_run.telemetry
        for node_id in range(2):
            points = gauge_run.series_values(f"cluster.node{node_id}.busy_cores")
            assert points
            for point in points:
                expected = self._active(
                    snapshot.spans, node_pid(node_id), "run", point.time
                )
                assert point.value == expected


# ------------------------------------------------------------------- exporters


def _check_chrome_schema(trace, snapshot):
    """Schema-check one Chrome trace-event JSON object."""
    events = trace["traceEvents"]
    assert events and trace["displayTimeUnit"] == "ms"

    # Metadata names every pid and every (pid, tid) track.
    meta_pids = {
        e["pid"] for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert meta_pids == set(snapshot.process_names)
    meta_tracks = {
        (e["pid"], e["tid"]) for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert meta_tracks == set(snapshot.track_names)

    # Sync B/E pairs nest per track: scanning each track's (contiguous,
    # internally ordered) stream, depth never goes negative and ends at 0.
    depth = {}
    for event in events:
        if event["ph"] == "B":
            key = (event["pid"], event["tid"])
            depth[key] = depth.get(key, 0) + 1
        elif event["ph"] == "E":
            key = (event["pid"], event["tid"])
            depth[key] = depth.get(key, 0) - 1
            assert depth[key] >= 0, f"unbalanced E on track {key}"
    assert all(v == 0 for v in depth.values())

    # Async b/e pairs balance per (pid, tid, id, name).
    async_counts = {}
    for event in events:
        if event["ph"] in ("b", "e"):
            key = (event["pid"], event["tid"], event["id"], event["name"])
            async_counts.setdefault(key, [0, 0])[event["ph"] == "e"] += 1
    assert all(b == e for b, e in async_counts.values())

    begins = sum(1 for e in events if e["ph"] == "B")
    async_begins = sum(1 for e in events if e["ph"] == "b")
    assert begins + async_begins == snapshot.span_count

    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == snapshot.instant_count
    assert all(e["s"] == "p" for e in instants)
    assert all(e["ts"] >= 0 for e in events if "ts" in e)


class TestExporters:
    def test_cluster_chrome_trace_schema(self, autoscale_traced):
        _, result = autoscale_traced
        trace = chrome_trace(result)
        _check_chrome_schema(trace, result.telemetry)
        # Autoscaler decisions surface as instants in the export.
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "i"}
        assert {"scale-up", "node-boot", "dispatch", "arrival"} <= names
        # Gauge series become counter tracks.
        counter_names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "C"
        }
        assert "cluster.fleet_load" in counter_names

    def test_standalone_chrome_trace_schema(self, standalone_traced):
        _, result = standalone_traced
        _check_chrome_schema(chrome_trace(result), result.telemetry)

    def test_trace_is_json_serialisable(self, autoscale_traced):
        _, result = autoscale_traced
        restored = json.loads(json.dumps(chrome_trace(result)))
        assert restored["traceEvents"]

    def test_write_chrome_trace(self, standalone_traced, tmp_path):
        _, result = standalone_traced
        path = tmp_path / "trace.json"
        count = write_chrome_trace(result, path)
        data = json.loads(path.read_text())
        assert count == len(data["traceEvents"]) > 0

    def test_timeline_table(self, standalone_traced):
        _, result = standalone_traced
        table = timeline_table(result)
        snapshot = result.telemetry
        assert table.dtype == TIMELINE_DTYPE
        assert len(table) == snapshot.span_count + snapshot.instant_count
        assert np.all(np.diff(table["start"]) >= 0)
        instants = table[table["kind"] == "instant"]
        assert np.array_equal(instants["start"], instants["end"])
        spans = table[table["kind"] == "span"]
        assert np.all(spans["end"] >= spans["start"])

    def test_write_timeline_csv(self, standalone_traced, tmp_path):
        _, result = standalone_traced
        path = tmp_path / "timeline.csv"
        count = write_timeline_csv(result, path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("kind,name,pid,tid,start,end")
        assert len(lines) == count + 1

    def test_exporters_reject_untraced_results(self):
        result = simulate(FIFOScheduler(), make_tasks([(0.0, 1.0)]))
        with pytest.raises(ValueError, match="no telemetry"):
            chrome_trace(result)
        with pytest.raises(ValueError, match="no telemetry"):
            timeline_table(result)


# ------------------------------------------------------------------- progress


class TestProgressReporter:
    def test_reports_and_closes(self):
        stream = io.StringIO()
        reporter = ProgressReporter(min_wall_interval=0.0, stream=stream)
        assert reporter.report(1.5, 3, 10)
        assert reporter.report(2.5, 7, 10)
        reporter.close(3.0, 10, 10)
        output = stream.getvalue()
        assert "3/10 tasks (30.0%)" in output
        assert "done: 10/10 tasks in 3.0s" in output
        assert reporter.lines_written == 3

    def test_wall_clock_throttling(self):
        stream = io.StringIO()
        reporter = ProgressReporter(min_wall_interval=1000.0, stream=stream)
        assert reporter.report(1.0, 1, 10)
        assert not reporter.report(2.0, 2, 10)
        assert reporter.lines_written == 1

    def test_progress_spec_drives_reporting_through_a_run(self):
        telemetry = TelemetrySpec(progress=True, progress_interval=0.0).build()
        telemetry.progress.stream = io.StringIO()
        simulate(
            FIFOScheduler(),
            make_tasks([(i * 0.5, 0.4) for i in range(10)]),
            config=SimulationConfig(num_cores=1),
            telemetry=telemetry,
        )
        output = telemetry.progress.stream.getvalue()
        assert "[telemetry] t=" in output
        assert "done: 10/10" in output


# ----------------------------------------------------------- scenario and CLI


class TestScenarioIntegration:
    def test_run_result_exposes_telemetry(self):
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.05),
            telemetry=TelemetrySpec(sample_interval=0.5),
        )
        result = run(scenario)
        assert result.telemetry is not None
        assert result.telemetry.span_count > 0
        assert "machine.busy_cores" in result.series
        # The exporter unwraps the RunResult transparently.
        _check_chrome_schema(chrome_trace(result), result.telemetry)

    def test_cluster_scenario_telemetry(self):
        scenario = Scenario(
            workload=Workload("two_minute", scale=0.05),
            num_nodes=2,
            dispatcher="jsq",
            telemetry=TelemetrySpec(sample_interval=0.5),
        )
        result = run(scenario)
        assert result.telemetry is not None
        assert "cluster.fleet_load" in result.series
        assert "telemetry" in result.describe()

    def test_untraced_scenario_has_no_telemetry(self):
        result = run(Scenario(workload=Workload("two_minute", scale=0.05)))
        assert result.telemetry is None


class TestRunnerCLI:
    def test_trace_flags_with_scenario(self, tmp_path, capsys):
        from repro.experiments.runner import run_cli

        scenario_path = tmp_path / "scenario.json"
        scenario_path.write_text(
            Scenario(workload=Workload("two_minute", scale=0.05)).to_json()
        )
        trace_path = tmp_path / "trace.json"
        rc = run_cli(
            ["--scenario", str(scenario_path), "--trace-out", str(trace_path),
             "--sample-interval", "0.5"]
        )
        assert rc == 0
        data = json.loads(trace_path.read_text())
        assert data["traceEvents"]
        out = capsys.readouterr().out
        assert "[telemetry] wrote" in out
        assert "telemetry" in out

    def test_trace_flags_require_scenario(self, tmp_path, capsys):
        from repro.experiments.runner import run_cli

        rc = run_cli(["--trace-out", str(tmp_path / "trace.json")])
        assert rc == 2
        assert "require --scenario" in capsys.readouterr().err
