"""Unit tests for the FIFO preemption time-limit policies."""

import pytest

from repro.core.time_limit import (
    AdaptivePercentileTimeLimit,
    FixedTimeLimit,
    build_time_limit_policy,
)


class TestFixedLimit:
    def test_constant(self):
        policy = FixedTimeLimit(1.633)
        assert policy.current() == 1.633
        policy.observe(10.0, now=1.0)  # no-op
        assert policy.current() == 1.633

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedTimeLimit(0.0)

    def test_describe(self):
        assert "1633" in FixedTimeLimit(1.633).describe()


class TestAdaptiveLimit:
    def test_uses_initial_limit_until_enough_observations(self):
        policy = AdaptivePercentileTimeLimit(percentile=90, initial_limit=2.0, min_observations=5)
        for i in range(4):
            policy.observe(0.1, now=float(i))
        assert policy.current() == 2.0
        policy.observe(0.1, now=5.0)
        assert policy.current() == pytest.approx(0.1)

    def test_tracks_percentile_of_window(self):
        policy = AdaptivePercentileTimeLimit(percentile=50, window=100, min_observations=1)
        for i in range(100):
            policy.observe(float(i + 1) / 100.0, now=float(i))
        assert policy.current() == pytest.approx(0.505, abs=0.02)

    def test_sliding_window_forgets_old_durations(self):
        policy = AdaptivePercentileTimeLimit(percentile=90, window=10, min_observations=1)
        for i in range(10):
            policy.observe(10.0, now=float(i))
        for i in range(10):
            policy.observe(0.1, now=float(10 + i))
        assert policy.current() == pytest.approx(0.1)

    def test_min_limit_floor(self):
        policy = AdaptivePercentileTimeLimit(
            percentile=50, min_limit=0.5, min_observations=1
        )
        for i in range(20):
            policy.observe(0.001, now=float(i))
        assert policy.current() == 0.5

    def test_higher_percentile_gives_higher_limit(self):
        low = AdaptivePercentileTimeLimit(percentile=25, min_observations=1)
        high = AdaptivePercentileTimeLimit(percentile=95, min_observations=1)
        durations = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0] * 5
        for i, duration in enumerate(durations):
            low.observe(duration, now=float(i))
            high.observe(duration, now=float(i))
        assert high.current() > low.current()

    def test_limit_history_recorded(self):
        policy = AdaptivePercentileTimeLimit(percentile=90, min_observations=1)
        policy.observe(1.0, now=3.0)
        history = policy.limit_history()
        assert len(history) == 1
        assert history[0][0] == 3.0

    def test_rejects_negative_duration(self):
        policy = AdaptivePercentileTimeLimit(percentile=90)
        with pytest.raises(ValueError):
            policy.observe(-1.0, now=0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"percentile": 0},
            {"percentile": 101},
            {"percentile": 90, "window": 0},
            {"percentile": 90, "initial_limit": 0.0},
            {"percentile": 90, "min_limit": 0.0},
            {"percentile": 90, "min_observations": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdaptivePercentileTimeLimit(**kwargs)


class TestFactory:
    def test_builds_fixed(self):
        policy = build_time_limit_policy(False, 1.0, 90, 100)
        assert isinstance(policy, FixedTimeLimit)

    def test_builds_adaptive_with_initial_from_fixed(self):
        policy = build_time_limit_policy(True, 2.5, 75, 50)
        assert isinstance(policy, AdaptivePercentileTimeLimit)
        assert policy.initial_limit == 2.5
        assert policy.window == 50
