"""Property and structure tests for the virtual-time core rewrite.

The hypothesis suite drives one real :class:`Core` and an *eager* reference
implementation (the pre-refactor per-task accounting: every sync touches
every task) through arbitrary add / remove / steal / charge / advance /
complete sequences and asserts the lazily-materialized ``task.remaining``
always equals the eagerly tracked value within 1e-9, along with the derived
quantities (next-completion delay, busy time, service delivered).

The remaining tests pin the new index/queue structures: O(1) event-queue
length bookkeeping, load-index determinism, O(1) machine load counters and
``__slots__`` on the hot-path objects.
"""

from __future__ import annotations

import math
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulation.context_switch import ContextSwitchModel
from repro.simulation.cpu import REMAINING_EPSILON, Core
from repro.simulation.events import EventQueue
from repro.simulation.machine import build_machine
from repro.simulation.task import Task

TOL = 1e-9


class EagerCore:
    """Reference mirror of the pre-virtual-time accounting.

    ``sync`` charges every task ``min(rate * elapsed, remaining)`` — the
    exact per-event O(n) loop the rewrite replaced.
    """

    def __init__(self, model: ContextSwitchModel, speed: float = 1.0) -> None:
        self.remaining: dict = {}
        self.last = 0.0
        self.busy_time = 0.0
        self.delivered = 0.0
        self.model = model
        self.speed = speed

    def rate(self) -> float:
        n = len(self.remaining)
        if n == 0:
            return 0.0
        return self.speed * self.model.efficiency(n) / n

    def sync(self, now: float) -> None:
        elapsed = now - self.last
        if elapsed > 0 and self.remaining:
            rate = self.rate()
            for tid, left in self.remaining.items():
                amount = min(rate * elapsed, left)
                self.remaining[tid] = left - amount
                self.delivered += amount
            self.busy_time += elapsed
        self.last = max(self.last, now)

    def add(self, tid: int, service: float, now: float) -> None:
        self.sync(now)
        self.remaining[tid] = service

    def remove(self, tid: int, now: float) -> None:
        self.sync(now)
        del self.remaining[tid]

    def charge(self, tid: int, amount: float, now: float) -> None:
        self.sync(now)
        self.remaining[tid] += amount

    def time_to_next_completion(self):
        rate = self.rate()
        if rate <= 0:
            return None
        return max(min(self.remaining.values()), 0.0) / rate


# One operation: (opcode, dt/service selector, magnitude)
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=0.01, max_value=2.0),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=40,
)


@given(ops=ops_strategy)
@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_virtual_time_remaining_equals_eager_remaining(ops):
    model = ContextSwitchModel()
    core = Core(core_id=0, group="all", context_switch=model, migration_cost=0.0)
    eager = EagerCore(model)
    tasks: dict = {}
    demand: dict = {}  # total work each task was given (service + charges)
    now = 0.0
    next_id = 0

    def compare():
        for tid, task in tasks.items():
            got = task.remaining  # sync-on-read materialization
            want = eager.remaining[tid]
            assert math.isclose(got, want, rel_tol=TOL, abs_tol=TOL), (
                f"task {tid}: virtual-time remaining {got!r} != eager {want!r}"
            )
        real_next = core.time_to_next_completion()
        ref_next = eager.time_to_next_completion()
        if real_next is None or ref_next is None:
            assert real_next == ref_next
        else:
            assert math.isclose(real_next, ref_next, rel_tol=1e-6, abs_tol=TOL)

    for opcode, magnitude, selector in ops:
        if opcode == 0:  # advance time
            now += magnitude
            core.sync(now)
            eager.sync(now)
        elif opcode == 1:  # add a fresh task
            task = Task(task_id=next_id, arrival_time=0.0, service_time=magnitude)
            core.add_task(task, now)
            eager.add(next_id, task.remaining, now)
            tasks[next_id] = task
            demand[next_id] = task.remaining
            next_id += 1
        elif opcode in (2, 3) and tasks:  # preempt (2) / steal away (3)
            tid = sorted(tasks)[selector % len(tasks)]
            task = tasks.pop(tid)
            core.remove_task(task, now, preempted=(opcode == 2))
            eager.remove(tid, now)
        elif opcode == 4 and tasks:  # migration-style charge: re-keys the heap
            tid = sorted(tasks)[selector % len(tasks)]
            amount = magnitude * 0.05
            tasks[tid].remaining += amount
            demand[tid] += amount
            eager.charge(tid, amount, now)
        elif opcode == 5 and tasks:  # run to the next completion
            delta = core.time_to_next_completion()
            assert delta is not None
            now += delta
            finished = core.finish_ready_tasks(now)
            eager.sync(now)
            for task in finished:
                # The eager mirror must agree the task is (numerically) done.
                assert eager.remaining[task.task_id] <= 1e-6
                del eager.remaining[task.task_id]
                del tasks[task.task_id]
                assert task.is_finished
                assert math.isclose(
                    task.cpu_time_received,
                    demand[task.task_id],
                    rel_tol=1e-6,
                    abs_tol=1e-6,
                )
        compare()

    core.sync(now)
    core.materialize_all()
    eager.sync(now)
    assert math.isclose(core.stats.busy_time, eager.busy_time, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(
        core.stats.service_delivered, eager.delivered, rel_tol=1e-6, abs_tol=1e-6
    )


class TestEventQueueLiveCount:
    def test_len_tracks_push_pop_cancel_clear(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None, tag="t") for i in range(5)]
        assert len(queue) == 5
        handles[0].cancel()
        handles[0].cancel()  # idempotent: must not double-decrement
        assert len(queue) == 4
        assert queue.pop() is not None  # skips the cancelled tombstone
        assert len(queue) == 3
        assert queue.cancel_pending("t") == 3
        assert len(queue) == 0
        assert queue.pop() is None
        queue.push(1.0, None, tag="x")
        queue.clear()
        assert len(queue) == 0

    def test_cancel_after_pop_or_clear_is_a_noop(self):
        queue = EventQueue()
        fired = queue.push(1.0, lambda: None)
        assert queue.pop() is not None
        fired.cancel()  # already fired: must not corrupt the live count
        assert len(queue) == 0
        cleared = queue.push(2.0, lambda: None)
        queue.clear()
        cleared.cancel()  # already cleared: must not drive the count negative
        assert len(queue) == 0
        queue.push(3.0, lambda: None)
        assert len(queue) == 1

    def test_len_is_constant_time_bookkeeping(self):
        """len() must not scan the heap: it reads a maintained counter.

        Below the compaction threshold cancellation is fully lazy, so the
        tombstones stay parked in the heap (larger cancel-heavy heaps are
        compacted — see TestTombstoneCompaction in test_clock_events.py).
        """
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(40)]
        for handle in handles[10:]:
            handle.cancel()
        assert len(queue._heap) == 40  # lazy cancellation keeps tombstones
        assert len(queue) == 10


class TestMachineLoadCounters:
    def test_busy_and_idle_counts_follow_task_moves(self):
        machine = build_machine(3)
        assert machine.busy_core_count() == 0
        assert machine.idle_core_count() == 3
        task = Task(task_id=0, arrival_time=0.0, service_time=1.0)
        machine.cores[0].add_task(task, 0.0)
        assert machine.busy_core_count() == 1
        assert machine.idle_core_count() == 2
        machine.cores[1].lock()
        assert machine.idle_core_count() == 1  # locked cores are not idle
        machine.cores[1].unlock()
        machine.cores[0].remove_task(task, 0.5, preempted=True)
        assert machine.busy_core_count() == 0
        assert machine.idle_core_count() == 3

    def test_least_loaded_matches_scan_after_churn(self):
        machine = build_machine(4)
        tasks = [Task(task_id=i, arrival_time=0.0, service_time=5.0) for i in range(9)]
        placement = [0, 0, 0, 1, 1, 2, 2, 2, 3]
        for task, cid in zip(tasks, placement):
            machine.cores[cid].add_task(task, 0.0)
        machine.cores[1].remove_task(tasks[3], 1.0, preempted=True)
        expected = min(
            (c for c in machine.cores if not c.locked),
            key=lambda c: (c.nr_running, c.core_id),
        )
        assert machine.least_loaded_core() is expected


def test_attained_rebase_preserves_remaining_on_never_idle_core():
    """A saturated long-horizon core rebases virtual time without drift."""
    from repro.simulation.cpu import ATTAINED_REBASE_THRESHOLD

    model = ContextSwitchModel(switch_cost=0.0)  # rate is exactly 1/n
    core = Core(core_id=0, group="all", context_switch=model)
    horizon = ATTAINED_REBASE_THRESHOLD
    t1 = Task(task_id=0, arrival_time=0.0, service_time=1.5 * horizon)
    t2 = Task(task_id=1, arrival_time=0.0, service_time=2.0 * horizon)
    core.add_task(t1, 0.0)
    core.add_task(t2, 0.0)
    core.sync(2.2 * horizon)  # attained = 1.1 * threshold -> rebase fires
    assert core._attained < ATTAINED_REBASE_THRESHOLD
    assert math.isclose(t1.remaining, 0.4 * horizon, rel_tol=1e-9)
    assert math.isclose(t2.remaining, 0.9 * horizon, rel_tol=1e-9)
    # Completion timing survives the rebase: t1 finishes after 0.8T more.
    delta = core.time_to_next_completion()
    assert math.isclose(delta, 0.8 * horizon, rel_tol=1e-9)
    finished = core.finish_ready_tasks(2.2 * horizon + delta)
    assert [task.task_id for task in finished] == [0]
    assert math.isclose(t1.cpu_time_received, t1.service_time, rel_tol=1e-9)


class _FakeNode:
    def __init__(self, node_id: int, inflight: int, capacity: float = 1.0) -> None:
        self.node_id = node_id
        self.inflight = inflight
        self.capacity = capacity


class TestNodeLoadIndex:
    def _index(self, loads):
        from repro.cluster.dispatchers import normalized_load
        from repro.cluster.load_index import NodeLoadIndex

        index = NodeLoadIndex()
        index.register("q", normalized_load)
        nodes = [_FakeNode(i, load) for i, load in enumerate(loads)]
        for node in nodes:
            index.add(node)
        return index, nodes

    def test_min_matches_scan_with_id_tie_break(self):
        index, nodes = self._index([3, 1, 1, 2])
        assert index.min("q") is nodes[1]  # load 1, lowest id wins the tie

    def test_touch_refreshes_ordering(self):
        index, nodes = self._index([0, 5])
        nodes[0].inflight = 9
        index.touch(nodes[0])
        assert index.min("q") is nodes[1]

    def test_discarded_nodes_never_returned(self):
        index, nodes = self._index([0, 5])
        index.discard(nodes[0])
        assert index.min("q") is nodes[1]
        index.discard(nodes[1])
        assert index.min("q") is None

    def test_view_backed_jsq_equals_scanning_jsq(self):
        from repro.cluster.dispatchers import JoinShortestQueueDispatcher
        from repro.cluster.load_index import ActiveNodeView, NodeLoadIndex

        dispatcher = JoinShortestQueueDispatcher()
        index = NodeLoadIndex()
        index.register(*dispatcher.load_index_key())
        view = ActiveNodeView(index)
        nodes = [_FakeNode(i, load, capacity=1.0 + i % 3) for i, load in enumerate([4, 2, 7, 2, 0])]
        for node in nodes:
            view.insert_node(node)
            index.add(node)
        task = Task(task_id=0, arrival_time=0.0, service_time=1.0)
        indexed = dispatcher.select_node(task, view)
        scanned = dispatcher.select_node(task, list(nodes))
        assert indexed is scanned


class TestSlots:
    @pytest.mark.skipif(sys.version_info < (3, 10), reason="slots dataclasses")
    def test_hot_path_objects_have_no_dict(self):
        task = Task(task_id=0, arrival_time=0.0, service_time=1.0)
        assert not hasattr(task, "__dict__")
        core = Core(core_id=0, group="all")
        assert not hasattr(core, "__dict__")
        queue = EventQueue()
        event = queue.push(0.0, None, tag="arrival", payload=task)._event
        assert not hasattr(event, "__dict__")

    def test_dataclass_fields_still_work(self):
        task = Task(task_id=1, arrival_time=0.5, service_time=2.0, name="fib")
        assert task.name == "fib"
        assert task.remaining == 2.0
        task.metadata["k"] = "v"
        assert task.metadata == {"k": "v"}
