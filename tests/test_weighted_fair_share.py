"""Weighted fair sharing: per-task ``weight`` scales the attained service."""

import pytest

from repro.schedulers.cfs import CFSScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.context_switch import ContextSwitchModel
from repro.simulation.cpu import Core
from repro.simulation.engine import simulate
from repro.simulation.task import Task


def _task(task_id, service, weight=1.0, arrival=0.0):
    return Task(
        task_id=task_id, arrival_time=arrival, service_time=service, weight=weight
    )


def _free_switching():
    """A cost-free context-switch model so shares are exact fractions."""
    return ContextSwitchModel(switch_cost=0.0)


class TestCoreWeights:
    def test_two_weight_shares(self):
        """Weight 2 vs 1: the heavy task gets exactly twice the service."""
        core = Core(core_id=0, group="all", context_switch=_free_switching())
        heavy = _task(0, service=10.0, weight=2.0)
        light = _task(1, service=10.0, weight=1.0)
        core.add_task(heavy, 0.0)
        core.add_task(light, 0.0)
        core.sync(3.0)
        # Unit rate is 1/3 of the core: heavy accrues 2 s, light 1 s.
        assert heavy.remaining == pytest.approx(8.0)
        assert light.remaining == pytest.approx(9.0)
        assert heavy.cpu_time_received == pytest.approx(2 * light.cpu_time_received)

    def test_weighted_completion_order_and_times(self):
        """Equal demands, unequal weights: the heavy task finishes first."""
        core = Core(core_id=0, group="all", context_switch=_free_switching())
        heavy = _task(0, service=2.0, weight=2.0)
        light = _task(1, service=2.0, weight=1.0)
        core.add_task(heavy, 0.0)
        core.add_task(light, 0.0)
        # Heavy runs at 2/3: finishes after 3 s; light then has 1 s left at
        # full speed: finishes at 4 s.  (Total service 4 s on one core.)
        delta = core.time_to_next_completion()
        assert delta == pytest.approx(3.0)
        finished = core.finish_ready_tasks(3.0)
        assert [t.task_id for t in finished] == [0]
        assert core.time_to_next_completion() == pytest.approx(1.0)
        finished = core.finish_ready_tasks(4.0)
        assert [t.task_id for t in finished] == [1]

    def test_unit_weights_keep_equal_share_arithmetic(self):
        """All-default weights reproduce the equal-share split exactly."""
        core = Core(core_id=0, group="all", context_switch=_free_switching())
        tasks = [_task(i, service=5.0) for i in range(4)]
        for task in tasks:
            core.add_task(task, 0.0)
        assert core.service_rate() == pytest.approx(0.25)
        core.sync(2.0)
        for task in tasks:
            assert task.remaining == pytest.approx(4.5)

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            _task(0, service=1.0, weight=0.0)
        with pytest.raises(ValueError):
            _task(0, service=1.0, weight=-1.5)

    def test_set_remaining_rekeys_with_weight(self):
        core = Core(core_id=0, group="all", context_switch=_free_switching())
        heavy = _task(0, service=4.0, weight=2.0)
        core.add_task(heavy, 0.0)
        heavy.remaining = 1.0
        # Alone on the core a weight-2 task still runs at full core speed:
        # unit rate = 1/2, task rate = weight * unit = 1.
        assert core.time_to_next_completion() == pytest.approx(1.0)


class TestEngineWeights:
    def test_two_weight_priority_end_to_end(self):
        """CFS machine, one core, two equal tasks: higher weight wins."""
        tasks = [
            _task(0, service=3.0, weight=2.0),
            _task(1, service=3.0, weight=1.0),
        ]
        result = simulate(
            CFSScheduler(),
            tasks,
            config=SimulationConfig(num_cores=1, record_utilization=False),
        )
        heavy, light = result.tasks[0], result.tasks[1]
        assert heavy.is_finished and light.is_finished
        assert heavy.completion_time < light.completion_time
        assert heavy.execution_time < light.execution_time
        # The columnar store carries the weights through to analysis.
        weights = dict(
            zip(
                result.task_columns().column("task_id"),
                result.task_columns().column("weight"),
            )
        )
        assert weights[0] == pytest.approx(2.0)
        assert weights[1] == pytest.approx(1.0)
