"""Tests for the workload substrate: Fibonacci, calibration, trace, pipeline."""

import numpy as np
import pytest

from repro.workload.azure import AzureTraceConfig, generate_trace
from repro.workload.calibration import (
    CalibrationEntry,
    CalibrationTable,
    DeterministicCalibration,
    MeasuredCalibration,
    default_calibration_table,
)
from repro.workload.extraction import ExtractionPipeline
from repro.workload.fibonacci import (
    fibonacci,
    fibonacci_recursive,
    fibonacci_recursive_cost,
    relative_cost,
)
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadItem,
    WorkloadSpec,
    build_workload,
    items_to_tasks,
)
from repro.workload.memory import AZURE_MEMORY_DISTRIBUTION, MemoryDistribution
from repro.workload.trace_io import load_workload_csv, save_workload_csv


class TestFibonacci:
    def test_values(self):
        assert [fibonacci(i) for i in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]

    def test_recursive_matches_iterative(self):
        for n in range(12):
            assert fibonacci_recursive(n) == fibonacci(n)

    def test_cost_recurrence(self):
        assert fibonacci_recursive_cost(0) == 1
        assert fibonacci_recursive_cost(5) == (
            fibonacci_recursive_cost(4) + fibonacci_recursive_cost(3) + 1
        )

    def test_cost_grows_roughly_geometrically(self):
        ratio = fibonacci_recursive_cost(30) / fibonacci_recursive_cost(29)
        assert 1.55 < ratio < 1.70

    def test_relative_cost(self):
        assert relative_cost(36, reference=36) == 1.0
        assert relative_cost(37, reference=36) > 1.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fibonacci(-1)
        with pytest.raises(ValueError):
            fibonacci_recursive(-1)


class TestCalibration:
    def test_deterministic_table_monotonic(self):
        table = DeterministicCalibration().calibrate()
        assert table.n_values == list(range(36, 47))
        assert table.durations == sorted(table.durations)
        assert table.duration_of(36) == pytest.approx(0.15)

    def test_nearest_n_and_bucketing(self):
        table = default_calibration_table()
        assert table.nearest_n(0.01) == 36
        assert table.nearest_n(1000.0) == 46
        mid = table.duration_of(40)
        assert table.bucket_duration(mid * 1.01) == pytest.approx(mid)

    def test_validation(self):
        with pytest.raises(ValueError):
            CalibrationTable([])
        with pytest.raises(ValueError):
            CalibrationTable([CalibrationEntry(36, -1.0)])
        with pytest.raises(ValueError):
            CalibrationTable([CalibrationEntry(36, 1.0), CalibrationEntry(36, 2.0)])
        with pytest.raises(KeyError):
            default_calibration_table().duration_of(10)
        with pytest.raises(ValueError):
            default_calibration_table().nearest_n(0.0)

    def test_measured_calibration_orders_durations(self):
        table = MeasuredCalibration(n_values=(10, 14, 18), repetitions=1).calibrate()
        assert len(table) == 3
        assert table.durations == sorted(table.durations)


class TestMemoryDistribution:
    def test_azure_distribution_matches_study(self):
        assert AZURE_MEMORY_DISTRIBUTION.fraction_at_most(400) >= 0.9
        assert AZURE_MEMORY_DISTRIBUTION.mean_mb() > 128

    def test_sampling_deterministic_with_seed(self):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        a = AZURE_MEMORY_DISTRIBUTION.sample(rng_a, 50)
        b = AZURE_MEMORY_DISTRIBUTION.sample(rng_b, 50)
        assert list(a) == list(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryDistribution(sizes_mb=(128,), weights=(0.5,))
        with pytest.raises(ValueError):
            MemoryDistribution(sizes_mb=(128, 256), weights=(1.0,))


class TestSyntheticTrace:
    def test_duration_skew_matches_azure(self):
        trace = generate_trace(AzureTraceConfig(minutes=2, num_functions=500))
        assert 0.7 <= trace.fraction_under(1.0) <= 0.92

    def test_deterministic_given_seed(self):
        config = AzureTraceConfig(minutes=2, num_functions=100, seed=3)
        a = generate_trace(config)
        b = generate_trace(config)
        assert a.total_invocations() == b.total_invocations()
        assert a.functions[5].average_duration == b.functions[5].average_duration

    def test_first_two_minutes_volume_close_to_target(self):
        config = AzureTraceConfig(minutes=2, num_functions=500)
        trace = generate_trace(config)
        per_minute = trace.invocations_per_minute()
        total = int(per_minute[:2].sum())
        assert total == pytest.approx(config.target_invocations_first_two_minutes, rel=0.05)

    def test_duration_cdf_monotonic(self):
        trace = generate_trace(AzureTraceConfig(minutes=2, num_functions=200))
        points, cdf = trace.duration_cdf()
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0)


class TestExtractionPipeline:
    def test_bucketing_and_downscale(self):
        trace = generate_trace(AzureTraceConfig(minutes=2, num_functions=300))
        pipeline = ExtractionPipeline(downscale_factor=100.0)
        buckets = pipeline.run(trace)
        assert buckets
        assert all(36 <= b.fibonacci_n <= 46 for b in buckets)
        raw_total = trace.total_invocations()
        scaled_total = ExtractionPipeline.total_invocations(buckets)
        assert scaled_total == pytest.approx(raw_total / 100.0, rel=0.1)
        report = pipeline.cleaning_report
        assert report is not None and report.kept > 0

    def test_memory_weights_normalised(self):
        trace = generate_trace(AzureTraceConfig(minutes=2, num_functions=200))
        buckets = ExtractionPipeline().run(trace)
        for bucket in buckets:
            if bucket.memory_weights:
                assert sum(bucket.memory_weights) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExtractionPipeline(downscale_factor=0.0)
        with pytest.raises(ValueError):
            ExtractionPipeline(max_duration=0.0)


class TestWorkloadGenerator:
    def test_items_sorted_and_limited(self):
        trace = generate_trace(AzureTraceConfig(minutes=2, num_functions=300))
        buckets = ExtractionPipeline().run(trace)
        generator = WorkloadGenerator(buckets)
        items = generator.generate_items(WorkloadSpec(minutes=2, limit=500))
        assert len(items) == 500
        arrivals = [item.arrival_time for item in items]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 120.0 for a in arrivals)

    def test_duration_percentile(self):
        trace = generate_trace(AzureTraceConfig(minutes=2, num_functions=300))
        generator = WorkloadGenerator(ExtractionPipeline().run(trace))
        p50 = generator.duration_percentile(50, minutes=2)
        p95 = generator.duration_percentile(95, minutes=2)
        assert p50 <= p95

    def test_items_to_tasks(self):
        items = [
            WorkloadItem(arrival_time=0.0, fibonacci_n=36, duration=0.2, memory_mb=128),
            WorkloadItem(arrival_time=1.0, fibonacci_n=40, duration=1.0, memory_mb=256),
        ]
        tasks = items_to_tasks(items)
        assert [t.task_id for t in tasks] == [0, 1]
        assert tasks[1].fibonacci_n == 40
        assert tasks[1].memory_mb == 256

    def test_build_workload_end_to_end(self):
        tasks = build_workload(
            minutes=2,
            limit=300,
            trace_config=AzureTraceConfig(minutes=2, num_functions=200),
        )
        assert len(tasks) == 300

    def test_item_validation(self):
        with pytest.raises(ValueError):
            WorkloadItem(arrival_time=-1.0, fibonacci_n=36, duration=0.1, memory_mb=128)
        with pytest.raises(ValueError):
            WorkloadItem(arrival_time=0.0, fibonacci_n=36, duration=0.0, memory_mb=128)


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        items = [
            WorkloadItem(arrival_time=0.5, fibonacci_n=38, duration=0.4, memory_mb=256),
            WorkloadItem(arrival_time=1.5, fibonacci_n=42, duration=2.7, memory_mb=512),
        ]
        path = save_workload_csv(items, tmp_path / "workload.csv")
        loaded = load_workload_csv(path)
        assert len(loaded) == 2
        assert loaded[0].fibonacci_n == 38
        assert loaded[1].memory_mb == 512
        assert loaded[1].arrival_time == pytest.approx(1.5)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_workload_csv(tmp_path / "nope.csv")

    def test_missing_columns_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("arrival_time,duration\n0.0,1.0\n")
        with pytest.raises(ValueError):
            load_workload_csv(bad)
